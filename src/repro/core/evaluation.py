"""Objective-function wrapper: evaluation records, caching, budget checks.

Algorithms never call the user's simulator directly; they go through an
:class:`Objective`, which

* enforces the calibration budget (raising :class:`BudgetExhausted` when
  it runs out, which the :class:`~repro.core.calibrator.Calibrator`
  catches — this lets the algorithms be written as straightforward loops,
  exactly as described in the paper);
* caches results so that re-visited points (e.g. shared grid corners) do
  not consume budget;
* records every evaluation (parameters, value, wall-clock timestamps) in a
  :class:`~repro.core.history.CalibrationHistory`, from which the Figure 2
  convergence curves are produced.

The cache is pluggable: by default it is a per-objective in-memory
dictionary (:class:`DictCache`), but any object implementing the
:class:`CacheBackend` interface can be supplied — notably the
store-backed cache of :mod:`repro.service`, which shares evaluations
across calibration jobs and across processes.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.core.budget import Budget
from repro.core.faults import (
    EVAL_METRIC_HELP,
    CircuitBreaker,
    EvaluationFailed,
    EvaluationFailure,
    FailurePolicy,
    RetryPolicy,
    run_guarded,
)
from repro.core.history import CalibrationHistory, Evaluation
from repro.core.parameters import ParameterSpace
from repro.telemetry.metrics import registry as _metrics_registry
from repro.telemetry.tracing import current_tracer

_REGISTRY = _metrics_registry()

__all__ = [
    "BudgetExhausted",
    "CacheBackend",
    "Claim",
    "DictCache",
    "Evaluation",
    "LEASE_RETRY_SECONDS",
    "Objective",
    "lease_deadline",
    "unit_cache_key",
]

CacheKey = tuple[float, ...]

#: How long (seconds) a driver waits before re-checking a lease whose
#: backend reported no expiry timestamp.  Short on purpose: a backend
#: that tracks no expiry gives no signal to wait on, so drivers re-poll
#: at this cadence and rely on claim-takeover for crash recovery.
LEASE_RETRY_SECONDS = 1.0


def lease_deadline(expires_at: float | None, ttl: float = LEASE_RETRY_SECONDS) -> float:
    """The wall-clock deadline to treat a lease as settled-or-stale.

    Backends that track leases report ``Claim.expires_at``; backends that
    don't report ``None``, and every driver must fall back to the *same*
    short retry horizon (``now + ttl``) or they disagree on when a lease
    is worth re-polling.  This helper is the single home of that policy —
    write ``lease_deadline(claim.expires_at)`` instead of an inline
    ``claim.expires_at or (time.time() + 1.0)``.
    """
    if expires_at is not None:
        return expires_at
    return time.time() + ttl


def unit_cache_key(unit: np.ndarray, decimals: int) -> CacheKey:
    """The canonical cache key for a unit-cube point.

    Every component that shares a cache (the serial :class:`Objective`,
    the batched driver, the service's store adapter) must build keys
    through this one function, or entries written by one stop matching
    lookups from another.
    """
    return tuple(np.round(unit, decimals))


class BudgetExhausted(Exception):
    """Raised by :meth:`Objective.evaluate` when the budget has run out."""


@dataclasses.dataclass(frozen=True)
class Claim:
    """Outcome of a non-blocking single-flight :meth:`CacheBackend.claim`.

    ``status`` is one of

    ``"hit"``
        The value is already known; ``value`` carries it, nothing to
        compute.
    ``"claimed"``
        The caller now owns the computation of this point and *must*
        finish the claim with :meth:`CacheBackend.put` (on success) or
        :meth:`CacheBackend.cancel` (on failure) — leaking a claim stalls
        every other driver on the point until the lease expires.
    ``"leased"``
        Another owner is computing the point right now.  The caller
        should do other work and re-:meth:`CacheBackend.poll` later;
        ``expires_at`` (a ``time.time()`` timestamp, when the backend
        tracks one) bounds how long the lease can stay unresolved before
        a re-``claim`` takes it over.
    ``"quarantined"``
        The point is recorded as a known failure (a poison point):
        ``failure`` carries the recorded
        :class:`~repro.core.faults.EvaluationFailure`.  The caller must
        not evaluate it — apply the failure policy (penalty or raise)
        instead of waiting out a lease that will never resolve.
    """

    status: str
    value: float | None = None
    expires_at: float | None = None
    failure: EvaluationFailure | None = None

    HIT = "hit"
    CLAIMED = "claimed"
    LEASED = "leased"
    QUARANTINED = "quarantined"


class CacheBackend:
    """Interface for pluggable evaluation caches.

    ``key`` is the objective's canonical unit-cube key (a tuple of rounded
    normalised coordinates); ``values`` is the raw parameter-value mapping.
    Backends are free to key on either representation.

    Contract and concurrency guarantees:

    * ``get``/``put``/``cancel`` is the classic memoisation triple used by
      the serial :class:`Objective`.  ``get`` may block while another
      worker computes the same point (single-flight backends), and
      ``cancel`` is called when an announced computation will not be
      completed (the simulator raised, or the budget ran out), so such
      backends can release their waiters.
    * ``claim``/``poll`` is the *non-blocking* protocol spoken by the
      batch and asynchronous drivers, which hold many candidates in
      flight at once and must never sleep inside a cache call: ``claim``
      returns immediately with a :class:`Claim` (hit / claimed / leased)
      and ``poll`` checks, without claiming anything, whether a point
      leased to another owner has been published yet.  The default
      implementations make any plain backend trivially correct: a miss is
      always ``"claimed"`` (no cross-driver leasing) and ``poll``
      delegates to ``get``.

    Thread-safety: backends shared between drivers (the service's
    store-backed cache) must make each method atomic; the per-objective
    :class:`DictCache` is only touched by its owning driver thread.
    """

    def get(self, key: CacheKey, values: Mapping[str, float]) -> float | None:
        raise NotImplementedError  # pragma: no cover - interface

    def put(self, key: CacheKey, values: Mapping[str, float], value: float) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def cancel(self, key: CacheKey, values: Mapping[str, float]) -> None:
        """Called when a computation announced by ``get`` -> miss (or by a
        ``claim`` -> ``"claimed"``) fails; releases any waiters/leases."""

    def mark_failed(
        self, key: CacheKey, values: Mapping[str, float], failure: EvaluationFailure
    ) -> None:
        """Quarantine a poison point: record that evaluating it failed
        permanently, so this run and any other run sharing the backend
        skip it instead of re-evaluating (or waiting on a lease for) it.
        The default merely releases waiters like :meth:`cancel`; backends
        with persistence (the store-backed cache) record the failure."""
        self.cancel(key, values)

    def get_failure(
        self, key: CacheKey, values: Mapping[str, float]
    ) -> EvaluationFailure | None:
        """The recorded failure for a quarantined point, or ``None``."""
        return None

    def claim(self, key: CacheKey, values: Mapping[str, float]) -> Claim:
        """Non-blocking single-flight lookup (see the class docstring).

        The default implementation never reports ``"leased"``: backends
        without cross-driver visibility simply hand the computation to the
        caller on a miss.  It delegates to :meth:`get` — a backend whose
        ``get`` may block (single-flight waiting) MUST override ``claim``
        with a genuinely non-blocking implementation, or batch/async
        drivers holding several candidates in flight can deadlock against
        each other (:class:`repro.service.cache.StoreBackedCache` is the
        reference implementation).
        """
        value = self.get(key, values)
        if value is not None:
            return Claim(Claim.HIT, value)
        failure = self.get_failure(key, values)
        if failure is not None:
            return Claim(Claim.QUARANTINED, failure=failure)
        return Claim(Claim.CLAIMED)

    def poll(self, key: CacheKey, values: Mapping[str, float]) -> float | None:
        """Check whether a point leased to another owner has been published
        (never blocks, never claims)."""
        return self.get(key, values)


class DictCache(CacheBackend):
    """The default per-objective cache: a plain dictionary on the unit key."""

    def __init__(self) -> None:
        self._data: dict[CacheKey, float] = {}
        self._failures: dict[CacheKey, EvaluationFailure] = {}

    def get(self, key: CacheKey, values: Mapping[str, float]) -> float | None:
        return self._data.get(key)

    def put(self, key: CacheKey, values: Mapping[str, float], value: float) -> None:
        self._data[key] = value
        # A later success un-quarantines the point (e.g. a transient
        # environment problem cleared up and a retry path landed a value).
        self._failures.pop(key, None)

    def mark_failed(
        self, key: CacheKey, values: Mapping[str, float], failure: EvaluationFailure
    ) -> None:
        self._failures[key] = failure

    def get_failure(
        self, key: CacheKey, values: Mapping[str, float]
    ) -> EvaluationFailure | None:
        return self._failures.get(key)

    def __len__(self) -> int:
        return len(self._data)


class Objective:
    """Budget-aware, caching wrapper around a simulator accuracy function.

    Parameters
    ----------
    function:
        Callable mapping a parameter-value dictionary to an accuracy value
        (lower is better; the case study uses the MRE in percent).
    space:
        The parameter space (used to convert between value dictionaries and
        normalised unit-cube coordinates).
    budget:
        Optional budget; when it is exhausted, :meth:`evaluate` raises
        :class:`BudgetExhausted`.
    cache:
        ``True`` (memoise in a fresh :class:`DictCache`), ``False`` (no
        caching), or a :class:`CacheBackend` instance such as the shared
        evaluation store of :mod:`repro.service`.
    record_cache_hits:
        When true, cache hits are appended to the history as
        :class:`Evaluation` records flagged ``cached=True`` (with zero-cost
        timestamps).  This keeps the algorithm's full trajectory — and in
        particular the best point — visible even when every point is served
        from a warm shared store.  Off by default, preserving the paper's
        history semantics (one record per simulator invocation).
    count_cache_hits:
        When true, a cache hit on a point this objective has *not itself
        seen before* (i.e. served from pre-existing shared-store work)
        counts toward the budget, so a run replayed from a warm store
        terminates at exactly the point the cold run did.  Revisits of
        points already seen within the run stay free, preserving the
        paper's "cache hits do not consume budget" semantics — a cold run
        with an empty store therefore behaves identically to a plain
        calibrator even for algorithms that revisit points (grid corners,
        coordinate/pattern stalls).  Off by default.
    retry_policy:
        Optional :class:`~repro.core.faults.RetryPolicy`: transient
        failures (including timeouts) are retried in place with
        deterministic backoff before becoming failure outcomes.
    failure_policy:
        Optional :class:`~repro.core.faults.FailurePolicy`: what happens
        once an evaluation *is* a failure outcome — tell the algorithm a
        penalty value and continue (``"penalty"``), or re-raise
        (``"raise"``).  Also controls poison-point quarantine and arms
        the per-job circuit breaker.  Without a policy, failures abort
        the run exactly as before.
    eval_timeout:
        Optional per-attempt wall-clock timeout in seconds (see
        :func:`~repro.core.faults.call_with_timeout` for where it can
        actually interrupt).

    When none of the three fault-tolerance knobs is set, every code path
    is byte-identical to the pre-fault-tolerance objective.
    """

    #: number of decimals used for the cache key in unit coordinates
    CACHE_DECIMALS = 9

    def __init__(
        self,
        function: Callable[[dict[str, float]], float],
        space: ParameterSpace,
        budget: Budget | None = None,
        cache: bool | CacheBackend = True,
        record_cache_hits: bool = False,
        count_cache_hits: bool = False,
        retry_policy: RetryPolicy | None = None,
        failure_policy: FailurePolicy | None = None,
        eval_timeout: float | None = None,
    ) -> None:
        self.function = function
        self.space = space
        self.budget = budget
        self.history = CalibrationHistory()
        if isinstance(cache, CacheBackend):
            self._cache: CacheBackend | None = cache
        elif cache:
            self._cache = DictCache()
        else:
            self._cache = None
        self.record_cache_hits = bool(record_cache_hits)
        self.count_cache_hits = bool(count_cache_hits)
        self.retry_policy = retry_policy
        self.failure_policy = failure_policy
        self.eval_timeout = eval_timeout
        self._fault_tolerant = (
            retry_policy is not None
            or failure_policy is not None
            or eval_timeout is not None
        )
        self._breaker = failure_policy.breaker() if failure_policy is not None else None
        self.cache_hits = 0
        self.failures = 0
        self.quarantine_skips = 0
        self._invocations = 0
        self._counted_hits = 0
        self._seen_keys: set = set()
        self._start_time = time.perf_counter()
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self, elapsed_offset: float = 0.0) -> None:
        """Reset the clock (called by the calibrator right before running).

        A resumed run passes the wall-clock its checkpoint had already
        spent: the clock — and any time budget — then continues from there,
        so new history timestamps stay monotone after the preloaded ones
        and an interrupted time-budgeted run gets only its remaining time.
        """
        self._start_time = time.perf_counter() - elapsed_offset
        self._started = True
        if self.budget is not None:
            self.budget.start(elapsed_offset)

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the calibration started."""
        return time.perf_counter() - self._start_time

    @property
    def evaluation_count(self) -> int:
        """Number of actual simulator invocations performed (cache misses)."""
        return self._invocations

    @property
    def steps(self) -> int:
        """Simulator invocations plus cache hits (the algorithm's step count)."""
        return self._invocations + self.cache_hits + self.quarantine_skips

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _cache_key(self, unit: np.ndarray) -> CacheKey:
        return unit_cache_key(unit, self.CACHE_DECIMALS)

    def _budget_units(self) -> int:
        base = self._invocations + self.quarantine_skips
        return base + self._counted_hits if self.count_cache_hits else base

    def _record(self, values: Mapping[str, float], unit: np.ndarray, value: float,
                started_at: float, finished_at: float, cached: bool,
                failed: bool = False) -> None:
        self.history.record(
            Evaluation(
                index=len(self.history),
                values=dict(values),
                unit=tuple(float(u) for u in unit),
                value=value,
                started_at=started_at,
                finished_at=finished_at,
                cached=cached,
                failed=failed,
            )
        )

    def preload(self, history: CalibrationHistory) -> None:
        """Restore a prior partial run's evaluations (checkpoint resume).

        Each record rejoins this objective's history and bookkeeping
        exactly as it was accounted for originally: simulator invocations
        count as invocations (and re-enter the cache, so in-run revisits
        stay free after the resume), recorded cache hits count as hits,
        and every point is marked seen.  The budget therefore picks up
        where the interrupted run stopped instead of starting over.
        """
        if len(self.history) or self._invocations:
            raise RuntimeError("preload() must run before any evaluation")
        for evaluation in history:
            unit = np.asarray(evaluation.unit, dtype=float)
            key = self._cache_key(unit)
            at = evaluation.started_at
            if evaluation.cached:
                self.cache_hits += 1
                if key not in self._seen_keys:
                    self._counted_hits += 1
            else:
                self._invocations += 1
                # A failed record carries the penalty value, not a real
                # simulator output: keep it out of the cache (any
                # quarantine lives in the shared backend already).
                if self._cache is not None and not evaluation.failed:
                    self._cache.put(key, dict(evaluation.values), evaluation.value)
            self._seen_keys.add(key)
            self._record(
                dict(evaluation.values), unit, evaluation.value,
                at, evaluation.finished_at, cached=evaluation.cached,
            )

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate the objective for a parameter-value dictionary."""
        if not self._started:
            self.start()
        unit = self.space.to_unit_array(values)
        key = self._cache_key(unit)
        if self._cache is not None:
            cached = self._cache.get(key, values)
            if cached is not None:
                # A first-seen hit replays work some earlier run paid for —
                # it was an invocation in the run being replayed, so (when
                # counting is on) the budget is checked before it is served,
                # exactly like the check before an invocation.  In-run
                # revisits were free in the original run too, so they stay
                # free here.
                first_seen = key not in self._seen_keys
                if (
                    self.count_cache_hits
                    and first_seen
                    and self.budget is not None
                    and self.budget.exhausted(self._budget_units())
                ):
                    raise BudgetExhausted(self.budget.describe())
                at = self.elapsed
                self.cache_hits += 1
                if first_seen:
                    self._counted_hits += 1
                    self._seen_keys.add(key)
                if self.record_cache_hits:
                    self._record(values, unit, cached, at, at, cached=True)
                if _REGISTRY.enabled:
                    _REGISTRY.counter(
                        "repro_objective_cache_hits_total",
                        "Evaluations answered from the cache.",
                    ).inc()
                return cached
        if self._fault_tolerant and self._cache is not None:
            known = self._cache.get_failure(key, values)
            if known is not None:
                return self._skip_quarantined(values, unit, key, known)
        tracer = current_tracer()
        try:
            if self.budget is not None and self.budget.exhausted(self._budget_units()):
                raise BudgetExhausted(self.budget.describe())
            started_at = self.elapsed
            sim_span = tracer.begin("simulate")
            if self._fault_tolerant:
                value, retries = run_guarded(
                    self.function, dict(values), self.retry_policy, self.eval_timeout
                )
                if retries:
                    self._note_retries(retries)
            else:
                value = float(self.function(dict(values)))
        except EvaluationFailed as error:
            # The evaluation exhausted its attempts: quarantine (or at
            # least release) the point, then apply the failure policy.
            return self._settle_failure(values, unit, key, error, started_at)
        except BaseException:
            # A blocking backend (single-flight dedup) may have announced
            # this computation to other workers; release them.
            if self._cache is not None:
                self._cache.cancel(key, values)
            raise
        finished_at = self.elapsed
        tracer.end(sim_span, value=value)
        if self._breaker is not None:
            self._breaker.record(None)
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                "repro_objective_evaluations_total",
                "Actual simulator invocations (cache misses).",
            ).inc()
            _REGISTRY.histogram(
                "repro_objective_evaluation_seconds",
                "Wall-clock per simulator invocation.",
            ).observe(finished_at - started_at)
        self._invocations += 1
        self._seen_keys.add(key)
        self._record(values, unit, value, started_at, finished_at, cached=False)
        if self._cache is not None:
            self._cache.put(key, values, value)
        return value

    # ------------------------------------------------------------------ #
    # failure outcomes
    # ------------------------------------------------------------------ #
    def _note_retries(self, retries: int) -> None:
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None and retries > 0:
            reg.counter(
                "repro_eval_retries_total",
                EVAL_METRIC_HELP["repro_eval_retries_total"],
            ).inc(retries)

    def _settle_failure(
        self,
        values: Mapping[str, float],
        unit: np.ndarray,
        key: CacheKey,
        error: EvaluationFailed,
        started_at: float,
    ) -> float:
        """An evaluation exhausted its attempts: quarantine the point,
        account the failure, then apply the failure policy (penalty tell
        or re-raise).  The failed attempt *is* a budget charge — the
        simulator ran — so penalty runs terminate on schedule."""
        failure = error.failure
        if self._cache is not None:
            if self.failure_policy is not None and self.failure_policy.quarantine:
                self._cache.mark_failed(key, values, failure)
            else:
                self._cache.cancel(key, values)
        self.failures += 1
        self._invocations += 1
        self._seen_keys.add(key)
        self._note_retries(failure.attempts - 1)
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            reg.counter(
                "repro_eval_failures_total",
                EVAL_METRIC_HELP["repro_eval_failures_total"],
            ).inc()
            if failure.kind == "timeout":
                reg.counter(
                    "repro_eval_timeouts_total",
                    EVAL_METRIC_HELP["repro_eval_timeouts_total"],
                ).inc()
        if self._breaker is not None:
            self._breaker.record(failure)
        if self.failure_policy is not None and self.failure_policy.penalize:
            penalty = self.failure_policy.penalty
            self._record(
                values, unit, penalty, started_at, self.elapsed,
                cached=False, failed=True,
            )
            if self._breaker is not None:
                self._breaker.check()
            return penalty
        raise error

    def _skip_quarantined(
        self,
        values: Mapping[str, float],
        unit: np.ndarray,
        key: CacheKey,
        failure: EvaluationFailure,
    ) -> float:
        """The point is already quarantined (by this run or a peer): no
        simulator call, no lease wait — serve the failure policy.  Each
        skip charges one budget unit so an algorithm stuck proposing a
        poison point still terminates."""
        if self.budget is not None and self.budget.exhausted(self._budget_units()):
            raise BudgetExhausted(self.budget.describe())
        if self._cache is not None:
            # Harmless when no lease is held; releases the claim a racing
            # peer's quarantine may have left us holding.
            self._cache.cancel(key, values)
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            reg.counter(
                "repro_eval_quarantined_total",
                EVAL_METRIC_HELP["repro_eval_quarantined_total"],
            ).inc()
        at = self.elapsed
        self.quarantine_skips += 1
        self._seen_keys.add(key)
        if self._breaker is not None:
            self._breaker.record(failure)
        if self.failure_policy is not None and self.failure_policy.penalize:
            penalty = self.failure_policy.penalty
            self._record(values, unit, penalty, at, at, cached=False, failed=True)
            if self._breaker is not None:
                self._breaker.check()
            return penalty
        raise EvaluationFailed(failure)

    def evaluate_unit(self, x: Sequence[float]) -> float:
        """Evaluate the objective at normalised unit-cube coordinates."""
        return self.evaluate(self.space.from_unit_array(self.space.clip_unit(x)))

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    @property
    def best(self) -> Evaluation | None:
        return self.history.best

    def best_values(self) -> dict[str, float]:
        best = self.history.best
        if best is None:
            raise ValueError("no evaluation has been performed yet")
        return dict(best.values)
