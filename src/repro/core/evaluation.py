"""Objective-function wrapper: evaluation records, caching, budget checks.

Algorithms never call the user's simulator directly; they go through an
:class:`Objective`, which

* enforces the calibration budget (raising :class:`BudgetExhausted` when
  it runs out, which the :class:`~repro.core.calibrator.Calibrator`
  catches — this lets the algorithms be written as straightforward loops,
  exactly as described in the paper);
* caches results so that re-visited points (e.g. shared grid corners) do
  not consume budget;
* records every evaluation (parameters, value, wall-clock timestamps) in a
  :class:`~repro.core.history.CalibrationHistory`, from which the Figure 2
  convergence curves are produced.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.budget import Budget
from repro.core.history import CalibrationHistory, Evaluation
from repro.core.parameters import ParameterSpace

__all__ = ["BudgetExhausted", "Evaluation", "Objective"]


class BudgetExhausted(Exception):
    """Raised by :meth:`Objective.evaluate` when the budget has run out."""


class Objective:
    """Budget-aware, caching wrapper around a simulator accuracy function.

    Parameters
    ----------
    function:
        Callable mapping a parameter-value dictionary to an accuracy value
        (lower is better; the case study uses the MRE in percent).
    space:
        The parameter space (used to convert between value dictionaries and
        normalised unit-cube coordinates).
    budget:
        Optional budget; when it is exhausted, :meth:`evaluate` raises
        :class:`BudgetExhausted`.
    cache:
        Whether to memoise evaluations (keyed on rounded unit coordinates).
    """

    #: number of decimals used for the cache key in unit coordinates
    CACHE_DECIMALS = 9

    def __init__(
        self,
        function: Callable[[Dict[str, float]], float],
        space: ParameterSpace,
        budget: Optional[Budget] = None,
        cache: bool = True,
    ) -> None:
        self.function = function
        self.space = space
        self.budget = budget
        self.history = CalibrationHistory()
        self._cache_enabled = cache
        self._cache: Dict[Tuple[float, ...], float] = {}
        self._start_time = time.perf_counter()
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Reset the clock (called by the calibrator right before running)."""
        self._start_time = time.perf_counter()
        self._started = True
        if self.budget is not None:
            self.budget.start()

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the calibration started."""
        return time.perf_counter() - self._start_time

    @property
    def evaluation_count(self) -> int:
        """Number of actual simulator invocations performed (cache misses)."""
        return len(self.history)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _cache_key(self, unit: np.ndarray) -> Tuple[float, ...]:
        return tuple(np.round(unit, self.CACHE_DECIMALS))

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate the objective for a parameter-value dictionary."""
        if not self._started:
            self.start()
        unit = self.space.to_unit_array(values)
        key = self._cache_key(unit)
        if self._cache_enabled and key in self._cache:
            return self._cache[key]
        if self.budget is not None and self.budget.exhausted(self.evaluation_count):
            raise BudgetExhausted(self.budget.describe())
        started_at = self.elapsed
        value = float(self.function(dict(values)))
        finished_at = self.elapsed
        self.history.record(
            Evaluation(
                index=self.evaluation_count,
                values=dict(values),
                unit=tuple(float(u) for u in unit),
                value=value,
                started_at=started_at,
                finished_at=finished_at,
            )
        )
        if self._cache_enabled:
            self._cache[key] = value
        return value

    def evaluate_unit(self, x: Sequence[float]) -> float:
        """Evaluate the objective at normalised unit-cube coordinates."""
        return self.evaluate(self.space.from_unit_array(self.space.clip_unit(x)))

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    @property
    def best(self) -> Optional[Evaluation]:
        return self.history.best

    def best_values(self) -> Dict[str, float]:
        best = self.history.best
        if best is None:
            raise ValueError("no evaluation has been performed yet")
        return dict(best.values)
