"""Fault-tolerant evaluation: retry policy, timeouts, failure outcomes.

Everything here runs in thread/serial modes (closure-friendly); the
process-pool chaos path is exercised end-to-end by
``tests/integration/test_chaos.py``.
"""

import pickle
import time

import numpy as np
import pytest

from repro.core import (
    AsyncCalibrator,
    BatchCalibrator,
    Calibrator,
    CircuitBreaker,
    CircuitOpen,
    DictCache,
    EvaluationBudget,
    EvaluationFailed,
    EvaluationFailure,
    EvaluationOutcome,
    EvaluationTimeout,
    FailurePolicy,
    Parameter,
    ParameterSpace,
    RetryPolicy,
    TransientEvaluationError,
)
from repro.core.evaluation import Objective
from repro.core.faults import (
    KIND_DETERMINISTIC,
    KIND_TIMEOUT,
    KIND_TRANSIENT,
    call_with_timeout,
    point_token,
    run_guarded,
    timeouts_supported,
)
from repro.core.serialization import evaluation_from_dict, evaluation_to_dict


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def quadratic(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    return objective


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.classify(EvaluationTimeout("t")) == KIND_TIMEOUT
        assert policy.classify(TransientEvaluationError("x")) == KIND_TRANSIENT
        assert policy.classify(ConnectionError("x")) == KIND_TRANSIENT
        assert policy.classify(TimeoutError("x")) == KIND_TRANSIENT
        assert policy.classify(InterruptedError("x")) == KIND_TRANSIENT
        assert policy.classify(ValueError("x")) == KIND_DETERMINISTIC
        assert policy.classify(RuntimeError("x")) == KIND_DETERMINISTIC

    def test_delay_is_deterministic_per_point(self):
        policy = RetryPolicy(backoff=0.1, jitter=0.5)
        token = point_token({"a": 1.0, "b": 2.0})
        assert policy.delay(1, token) == policy.delay(1, token)
        # Different attempts jitter differently, different tokens too.
        assert policy.delay(1, token) != policy.delay(2, token) / 2.0
        assert policy.delay(1, token) != policy.delay(1, "other")

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(10) == pytest.approx(0.3)

    def test_point_token_is_order_insensitive(self):
        assert point_token({"b": 2.0, "a": 1.0}) == point_token({"a": 1.0, "b": 2.0})


class TestRunGuarded:
    def test_success_passes_through(self):
        value, retries = run_guarded(lambda v: 7.5, {"x": 1.0})
        assert value == 7.5
        assert retries == 0

    def test_transient_failures_are_retried(self):
        calls = []

        def flaky(values):
            calls.append(1)
            if len(calls) < 3:
                raise TransientEvaluationError("flaky")
            return 4.0

        policy = RetryPolicy(max_attempts=3, backoff=0.001, backoff_max=0.002)
        value, retries = run_guarded(flaky, {"x": 1.0}, retry=policy)
        assert value == 4.0
        assert retries == 2
        assert len(calls) == 3

    def test_deterministic_failures_never_retry(self):
        calls = []

        def broken(values):
            calls.append(1)
            raise ValueError("bad parameters")

        policy = RetryPolicy(max_attempts=5, backoff=0.001)
        with pytest.raises(EvaluationFailed) as info:
            run_guarded(broken, {"x": 1.0}, retry=policy)
        assert len(calls) == 1
        failure = info.value.failure
        assert failure.kind == KIND_DETERMINISTIC
        assert failure.attempts == 1
        assert "bad parameters" in failure.error

    def test_exhaustion_reports_all_attempts(self):
        def always_flaky(values):
            raise TransientEvaluationError("never recovers")

        policy = RetryPolicy(max_attempts=3, backoff=0.001, backoff_max=0.002)
        with pytest.raises(EvaluationFailed) as info:
            run_guarded(always_flaky, {"x": 1.0}, retry=policy)
        assert info.value.failure.kind == KIND_TRANSIENT
        assert info.value.failure.attempts == 3

    def test_no_policy_means_single_attempt(self):
        calls = []

        def flaky(values):
            calls.append(1)
            raise TransientEvaluationError("flaky")

        with pytest.raises(EvaluationFailed):
            run_guarded(flaky, {"x": 1.0})
        assert len(calls) == 1


class TestTimeouts:
    def test_supported_in_main_thread(self):
        assert timeouts_supported()

    def test_timeout_interrupts_a_hang(self):
        def hang(values):
            time.sleep(30.0)
            return 0.0

        started = time.perf_counter()
        with pytest.raises(EvaluationTimeout):
            call_with_timeout(hang, {"x": 1.0}, timeout=0.2)
        assert time.perf_counter() - started < 5.0

    def test_no_timeout_runs_unguarded(self):
        assert call_with_timeout(lambda v: 3.0, {"x": 1.0}, timeout=None) == 3.0

    def test_timer_is_cleared_after_success(self):
        assert call_with_timeout(lambda v: 1.0, {"x": 1.0}, timeout=0.2) == 1.0
        time.sleep(0.3)  # a leaked itimer would fire here and kill the test

    def test_run_guarded_classifies_timeout_as_transient(self):
        calls = []

        def hang_once(values):
            calls.append(1)
            if len(calls) == 1:
                time.sleep(30.0)
            return 9.0

        policy = RetryPolicy(max_attempts=2, backoff=0.001, backoff_max=0.002)
        value, retries = run_guarded(hang_once, {"x": 1.0}, retry=policy, timeout=0.2)
        assert value == 9.0
        assert retries == 1


class TestOutcomeTypes:
    def test_outcome_success_and_failure(self):
        ok = EvaluationOutcome.success(2.5, duration=0.1, retries=1)
        assert ok.ok and ok.unwrap() == 2.5
        failed = EvaluationOutcome.failed(EvaluationFailure("boom", attempts=2))
        assert not failed.ok
        with pytest.raises(EvaluationFailed):
            failed.unwrap()

    def test_evaluation_failed_pickles(self):
        error = EvaluationFailed(EvaluationFailure("boom", kind="transient", attempts=3))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, EvaluationFailed)
        assert clone.failure == error.failure

    def test_failure_dict_roundtrip(self):
        failure = EvaluationFailure("boom", kind="timeout", attempts=2, elapsed=1.5)
        assert EvaluationFailure.from_dict(failure.to_dict()) == failure

    def test_failed_history_record_roundtrip(self):
        space = make_space(1)
        objective = Objective(
            lambda v: (_ for _ in ()).throw(ValueError("poison")),
            space,
            failure_policy=FailurePolicy(penalty=123.0),
        )
        objective.evaluate(space.from_unit_array(np.asarray([0.5])))
        record = objective.history[0]
        assert record.failed and record.value == 123.0
        clone = evaluation_from_dict(evaluation_to_dict(record))
        assert clone.failed and clone == record

    def test_clean_record_dict_has_no_failed_key(self):
        space = make_space(1)
        objective = Objective(lambda v: 1.0, space)
        objective.evaluate(space.from_unit_array(np.asarray([0.5])))
        assert "failed" not in evaluation_to_dict(objective.history[0])

    def test_failure_policy_validates_on_failure(self):
        with pytest.raises(ValueError):
            FailurePolicy(on_failure="explode")


class TestCircuitBreaker:
    def test_never_trips_below_min_samples(self):
        breaker = CircuitBreaker(threshold=0.1, min_samples=10)
        for _ in range(9):
            breaker.record(EvaluationFailure("boom"))
            breaker.check()

    def test_trips_at_threshold_with_diagnosis(self):
        breaker = CircuitBreaker(threshold=0.5, min_samples=4)
        for index in range(2):
            breaker.record(None)
            breaker.record(EvaluationFailure(f"boom #{index}"))
        with pytest.raises(CircuitOpen) as info:
            breaker.check()
        assert "2/4" in str(info.value)
        assert "boom #1" in str(info.value)

    def test_none_threshold_is_pure_accounting(self):
        breaker = CircuitBreaker()
        for _ in range(50):
            breaker.record(EvaluationFailure("boom"))
        breaker.check()
        assert breaker.failure_rate == 1.0


class TestObjectiveFailurePaths:
    def test_penalty_policy_keeps_going(self):
        space = make_space(2)
        base = quadratic(space)

        def sometimes_broken(values):
            if values["p0"] > 2.0**29:
                raise ValueError("poison region")
            return base(values)

        objective = Objective(
            sometimes_broken, space, budget=EvaluationBudget(10),
            failure_policy=FailurePolicy(penalty=1e6),
        )
        good = space.from_unit_array(np.asarray([0.1, 0.5]))
        bad = space.from_unit_array(np.asarray([0.9999, 0.5]))
        assert objective.evaluate(good) < 1e6
        assert objective.evaluate(bad) == 1e6
        assert objective.failures == 1
        assert objective.history[1].failed

    def test_raise_policy_records_then_raises(self):
        space = make_space(1)
        objective = Objective(
            lambda v: (_ for _ in ()).throw(ValueError("poison")),
            space,
            failure_policy=FailurePolicy(on_failure="raise"),
        )
        with pytest.raises(EvaluationFailed):
            objective.evaluate(space.from_unit_array(np.asarray([0.5])))
        assert objective.failures == 1
        # Raise-policy failures are not history records (the run aborts),
        # but the point is quarantined for the next run sharing the cache.
        assert len(objective.history) == 0

    def test_quarantined_point_is_not_reevaluated(self):
        space = make_space(1)
        calls = []

        def poison(values):
            calls.append(1)
            raise ValueError("poison")

        cache = DictCache()
        objective = Objective(
            poison, space, cache=cache, failure_policy=FailurePolicy(penalty=50.0),
        )
        point = space.from_unit_array(np.asarray([0.5]))
        assert objective.evaluate(point) == 50.0
        assert objective.evaluate(point) == 50.0
        assert len(calls) == 1  # the second serve came from quarantine
        assert objective.failures == 1
        assert objective.quarantine_skips == 1

    def test_quarantine_skips_charge_the_budget(self):
        space = make_space(1)
        cache = DictCache()
        cache.mark_failed(
            (0.5,), {}, EvaluationFailure("poisoned elsewhere"),
        )
        objective = Objective(
            lambda v: 1.0, space, budget=EvaluationBudget(2), cache=cache,
            failure_policy=FailurePolicy(penalty=9.0),
        )
        point = space.from_unit_array(np.asarray([0.5]))
        assert objective.evaluate(point) == 9.0
        assert objective.steps == 1  # the skip consumed a step

    def test_success_heals_quarantine_in_dict_cache(self):
        cache = DictCache()
        cache.mark_failed((0.5,), {}, EvaluationFailure("boom"))
        assert cache.get_failure((0.5,), {}) is not None
        cache.put((0.5,), {}, 3.0)
        assert cache.get_failure((0.5,), {}) is None

    def test_retry_policy_recovers_transients_invisibly(self):
        space = make_space(1)
        attempts = []

        def flaky(values):
            attempts.append(1)
            if len(attempts) == 1:
                raise TransientEvaluationError("first attempt fails")
            return 5.0

        objective = Objective(
            flaky, space,
            retry_policy=RetryPolicy(max_attempts=2, backoff=0.001, backoff_max=0.002),
        )
        assert objective.evaluate(space.from_unit_array(np.asarray([0.5]))) == 5.0
        assert objective.failures == 0
        assert len(objective.history) == 1
        assert not objective.history[0].failed

    def test_circuit_breaker_aborts_a_broken_objective(self):
        space = make_space(1)
        objective = Objective(
            lambda v: (_ for _ in ()).throw(ValueError("always broken")),
            space,
            failure_policy=FailurePolicy(
                penalty=1e6, failure_rate_threshold=0.5, min_samples=4,
            ),
        )
        with pytest.raises(CircuitOpen):
            for index in range(10):
                objective.evaluate(space.from_unit_array(np.asarray([index / 10.0])))
        assert objective.failures >= 4


class TestDriverFailurePaths:
    def test_serial_calibrator_completes_past_failures(self):
        space = make_space(2)
        base = quadratic(space)

        def sometimes_broken(values):
            if space.to_unit_array(values)[0] > 0.8:
                raise ValueError("poison region")
            return base(values)

        result = Calibrator(
            space, sometimes_broken, algorithm="random",
            budget=EvaluationBudget(30), seed=3,
            failure_policy=FailurePolicy(penalty=1e6),
        ).run()
        assert result.evaluations == 30
        failed = [e for e in result.history if e.failed]
        assert failed  # seed 3 visits the poison region
        assert all(e.value == 1e6 for e in failed)
        assert result.best_value < 1e6

    def test_batch_calibrator_completes_past_failures(self):
        space = make_space(2)
        base = quadratic(space)

        def sometimes_broken(values):
            if space.to_unit_array(values)[0] > 0.8:
                raise ValueError("poison region")
            return base(values)

        result = BatchCalibrator(
            space, sometimes_broken, algorithm="random", workers=4, mode="thread",
            budget=EvaluationBudget(30), seed=3,
            failure_policy=FailurePolicy(penalty=1e6),
        ).run()
        assert result.evaluations == 30
        assert any(e.failed for e in result.history)
        assert result.best_value < 1e6

    def test_async_calibrator_completes_past_failures(self):
        space = make_space(2)
        base = quadratic(space)

        def sometimes_broken(values):
            if space.to_unit_array(values)[0] > 0.8:
                raise ValueError("poison region")
            return base(values)

        result = AsyncCalibrator(
            space, sometimes_broken, algorithm="random", workers=4, mode="thread",
            budget=EvaluationBudget(30), seed=3,
            failure_policy=FailurePolicy(penalty=1e6),
        ).run()
        assert result.evaluations == 30
        assert any(e.failed for e in result.history)
        assert result.best_value < 1e6

    def test_transient_retries_match_the_clean_trajectory(self):
        """A run whose transient failures all recover on retry visits the
        exact clean trajectory: retries happen inside the evaluation."""
        space = make_space(2)
        base = quadratic(space)
        clean = Calibrator(
            space, base, algorithm="random", budget=EvaluationBudget(20), seed=5,
        ).run()

        seen = {}

        def flaky(values):
            token = point_token(values)
            seen[token] = seen.get(token, 0) + 1
            if seen[token] == 1:
                raise TransientEvaluationError("every first attempt fails")
            return base(values)

        chaotic = Calibrator(
            space, flaky, algorithm="random", budget=EvaluationBudget(20), seed=5,
            retry_policy=RetryPolicy(max_attempts=2, backoff=0.001, backoff_max=0.002),
        ).run()
        assert [e.unit for e in chaotic.history] == [e.unit for e in clean.history]
        assert [e.value for e in chaotic.history] == [e.value for e in clean.history]
        assert chaotic.best_value == clean.best_value


class TestZeroFailureByteIdentity:
    """Arming the knobs must not change a run that never fails."""

    @pytest.mark.parametrize("name", ["random", "lhs", "cmaes"])
    def test_serial_trajectories_are_identical(self, name):
        space = make_space(3)
        plain = Calibrator(
            space, quadratic(space), algorithm=name,
            budget=EvaluationBudget(30), seed=11,
        ).run()
        armed = Calibrator(
            space, quadratic(space), algorithm=name,
            budget=EvaluationBudget(30), seed=11,
            retry_policy=RetryPolicy(), failure_policy=FailurePolicy(),
            eval_timeout=60.0,
        ).run()
        assert [e.unit for e in armed.history] == [e.unit for e in plain.history]
        assert [e.value for e in armed.history] == [e.value for e in plain.history]
        assert not any(e.failed for e in armed.history)
        assert armed.best_values == plain.best_values

    def test_async_trajectories_are_identical(self):
        space = make_space(2)
        plain = AsyncCalibrator(
            space, quadratic(space), algorithm="random", workers=4, mode="thread",
            budget=EvaluationBudget(24), seed=11,
        ).run()
        armed = AsyncCalibrator(
            space, quadratic(space), algorithm="random", workers=4, mode="thread",
            budget=EvaluationBudget(24), seed=11,
            retry_policy=RetryPolicy(), failure_policy=FailurePolicy(),
        ).run()
        assert sorted(e.unit for e in armed.history) == sorted(
            e.unit for e in plain.history
        )
        assert armed.best_value == plain.best_value
