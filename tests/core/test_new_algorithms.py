"""The extension calibration algorithms (Nelder-Mead, DE, CMA-ES, pattern
search, TPE, Sobol) on synthetic objectives.

Mirrors tests/core/test_algorithms.py for the newly added optimizers: every
algorithm must respect the budget, make progress on a smooth convex
objective with a known optimum, and be deterministic for a fixed seed.
"""

import numpy as np
import pytest

from repro.core import (
    ALGORITHMS,
    Calibrator,
    EvaluationBudget,
    Parameter,
    ParameterSpace,
    get_algorithm,
)
from repro.core.algorithms.cmaes import CMAES
from repro.core.algorithms.differential_evolution import DifferentialEvolution
from repro.core.algorithms.nelder_mead import NelderMead
from repro.core.algorithms.pattern_search import PatternSearch
from repro.core.algorithms.sobol import SobolSearch
from repro.core.algorithms.tpe import TPESearch

NEW_ALGORITHMS = ("nelder-mead", "de", "cmaes", "pattern", "tpe", "sobol")


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def quadratic_objective(space, optimum_unit=0.37):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - optimum_unit) ** 2)) * 100.0

    return objective


class TestRegistration:
    def test_new_algorithms_are_registered(self):
        for name in NEW_ALGORITHMS:
            assert name in ALGORITHMS

    def test_get_algorithm_builds_default_instances(self):
        assert isinstance(get_algorithm("nelder-mead"), NelderMead)
        assert isinstance(get_algorithm("de"), DifferentialEvolution)
        assert isinstance(get_algorithm("cmaes"), CMAES)
        assert isinstance(get_algorithm("pattern"), PatternSearch)
        assert isinstance(get_algorithm("tpe"), TPESearch)
        assert isinstance(get_algorithm("sobol"), SobolSearch)


class TestConstructorValidation:
    def test_nelder_mead_rejects_bad_coefficients(self):
        with pytest.raises(ValueError):
            NelderMead(contraction=1.5)
        with pytest.raises(ValueError):
            NelderMead(expansion=0.5)

    def test_differential_evolution_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            DifferentialEvolution(population_size=3)
        with pytest.raises(ValueError):
            DifferentialEvolution(mutation=0.0)
        with pytest.raises(ValueError):
            DifferentialEvolution(crossover=1.5)

    def test_cmaes_rejects_non_positive_sigma(self):
        with pytest.raises(ValueError):
            CMAES(initial_sigma=0.0)

    def test_pattern_search_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            PatternSearch(step_reduction=1.0)
        with pytest.raises(ValueError):
            PatternSearch(initial_step=-0.1)

    def test_tpe_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            TPESearch(warmup=1)
        with pytest.raises(ValueError):
            TPESearch(gamma=1.0)

    def test_sobol_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            SobolSearch(batch_size=0)


class TestBudgetCompliance:
    @pytest.mark.parametrize("name", NEW_ALGORITHMS)
    def test_exactly_budget_evaluations(self, name):
        space = make_space()
        calibrator = Calibrator(
            space, quadratic_objective(space), algorithm=name,
            budget=EvaluationBudget(40), seed=7, cache=False,
        )
        result = calibrator.run()
        assert result.evaluations == 40


class TestProgress:
    @pytest.mark.parametrize("name", NEW_ALGORITHMS)
    def test_beats_the_first_random_sample(self, name):
        """After 120 evaluations the best value must be far below the
        average value of the quadratic over the cube (~ 2 * 100 / 12 per
        dimension away from the optimum)."""
        space = make_space()
        calibrator = Calibrator(
            space, quadratic_objective(space), algorithm=name,
            budget=EvaluationBudget(120), seed=3,
        )
        result = calibrator.run()
        assert result.best_value < 10.0

    @pytest.mark.parametrize("name", ("nelder-mead", "pattern", "cmaes"))
    def test_local_methods_nearly_find_the_optimum(self, name):
        space = make_space(dimension=2)
        calibrator = Calibrator(
            space, quadratic_objective(space), algorithm=name,
            budget=EvaluationBudget(200), seed=5,
        )
        result = calibrator.run()
        assert result.best_value < 0.5
        # The optimum sits at unit coordinate 0.37 in both dimensions.
        best_unit = space.to_unit_array(result.best_values)
        assert np.all(np.abs(best_unit - 0.37) < 0.1)


class TestDeterminism:
    @pytest.mark.parametrize("name", NEW_ALGORITHMS)
    def test_same_seed_same_history(self, name):
        space = make_space()

        def run(seed):
            calibrator = Calibrator(
                space, quadratic_objective(space), algorithm=name,
                budget=EvaluationBudget(50), seed=seed,
            )
            result = calibrator.run()
            return [round(e.value, 12) for e in result.history]

        assert run(11) == run(11)

    @pytest.mark.parametrize("name", ("de", "cmaes", "tpe"))
    def test_different_seed_different_samples(self, name):
        space = make_space()

        def first_values(seed):
            calibrator = Calibrator(
                space, quadratic_objective(space), algorithm=name,
                budget=EvaluationBudget(30), seed=seed,
            )
            result = calibrator.run()
            return tuple(round(e.value, 9) for e in result.history)

        assert first_values(1) != first_values(2)


class TestSobolCoverage:
    def test_sobol_points_are_distinct_and_in_bounds(self):
        space = make_space(dimension=2)
        seen = []

        def objective(values):
            unit = space.to_unit_array(values)
            seen.append(tuple(unit))
            return float(np.sum(unit))

        Calibrator(
            space, objective, algorithm="sobol", budget=EvaluationBudget(64), seed=0, cache=False
        ).run()
        assert len(seen) == 64
        assert len(set(seen)) == 64
        for point in seen:
            assert all(0.0 <= c <= 1.0 for c in point)
