"""Pluggable Objective cache backends and cache-hit accounting."""

import pytest

from repro.core import (
    BudgetExhausted,
    CacheBackend,
    Calibrator,
    DictCache,
    EvaluationBudget,
    Objective,
    Parameter,
    ParameterSpace,
)


def make_space():
    return ParameterSpace(
        [Parameter("x", 1.0, 16.0), Parameter("y", 1.0, 16.0)]
    )


class RecordingBackend(CacheBackend):
    """A dict backend that records the calls it receives."""

    def __init__(self):
        self.data = {}
        self.calls = []

    def get(self, key, values):
        self.calls.append(("get", key))
        return self.data.get(key)

    def put(self, key, values, value):
        self.calls.append(("put", key))
        self.data[key] = value

    def cancel(self, key, values):
        self.calls.append(("cancel", key))


class TestPluggableBackend:
    def test_custom_backend_receives_gets_and_puts(self):
        backend = RecordingBackend()
        objective = Objective(lambda v: v["x"], make_space(), cache=backend)
        objective.evaluate({"x": 4.0, "y": 8.0})
        objective.evaluate({"x": 4.0, "y": 8.0})
        kinds = [kind for kind, _ in backend.calls]
        assert kinds == ["get", "put", "get"]
        assert objective.cache_hits == 1
        assert objective.evaluation_count == 1

    def test_prewarmed_backend_avoids_the_simulator(self):
        space = make_space()
        backend = RecordingBackend()
        probe = Objective(lambda v: v["x"] * 10.0, space, cache=backend)
        probe.evaluate({"x": 4.0, "y": 8.0})

        calls = []
        warm = Objective(lambda v: calls.append(v) or 0.0, space, cache=backend)
        assert warm.evaluate({"x": 4.0, "y": 8.0}) == 40.0
        assert calls == []
        assert warm.cache_hits == 1

    def test_cache_true_builds_a_dict_cache(self):
        objective = Objective(lambda v: v["x"], make_space(), cache=True)
        objective.evaluate({"x": 4.0, "y": 8.0})
        objective.evaluate({"x": 4.0, "y": 8.0})
        assert objective.cache_hits == 1

    def test_failing_function_cancels_the_announced_computation(self):
        backend = RecordingBackend()

        def broken(values):
            raise RuntimeError("boom")

        objective = Objective(broken, make_space(), cache=backend)
        with pytest.raises(RuntimeError):
            objective.evaluate({"x": 4.0, "y": 8.0})
        assert ("cancel", backend.calls[0][1]) in backend.calls

    def test_budget_exhaustion_cancels_too(self):
        backend = RecordingBackend()
        objective = Objective(lambda v: v["x"], make_space(),
                              budget=EvaluationBudget(1), cache=backend)
        objective.start()
        objective.evaluate({"x": 4.0, "y": 8.0})
        with pytest.raises(BudgetExhausted):
            objective.evaluate({"x": 2.0, "y": 2.0})
        assert [kind for kind, _ in backend.calls] == ["get", "put", "get", "cancel"]


class TestCacheHitRecording:
    def test_hits_recorded_when_asked(self):
        objective = Objective(lambda v: v["x"], make_space(), record_cache_hits=True)
        objective.evaluate({"x": 4.0, "y": 8.0})
        objective.evaluate({"x": 4.0, "y": 8.0})
        assert len(objective.history) == 2
        assert [e.cached for e in objective.history] == [False, True]
        assert objective.evaluation_count == 1
        assert objective.steps == 2

    def test_hits_not_recorded_by_default(self):
        objective = Objective(lambda v: v["x"], make_space())
        objective.evaluate({"x": 4.0, "y": 8.0})
        objective.evaluate({"x": 4.0, "y": 8.0})
        assert len(objective.history) == 1

    def test_counted_first_seen_hits_exhaust_the_budget(self):
        # A backend prewarmed by earlier work: every hit replays a paid-for
        # invocation, so each distinct point charges the budget once.
        space = make_space()
        backend = RecordingBackend()
        probe = Objective(lambda v: v["x"], space, cache=backend)
        for x in (2.0, 4.0, 8.0, 16.0):
            probe.evaluate({"x": x, "y": 2.0})

        warm = Objective(lambda v: v["x"], space, budget=EvaluationBudget(3),
                         cache=backend, record_cache_hits=True, count_cache_hits=True)
        warm.start()
        warm.evaluate({"x": 2.0, "y": 2.0})
        warm.evaluate({"x": 4.0, "y": 2.0})
        warm.evaluate({"x": 8.0, "y": 2.0})
        with pytest.raises(BudgetExhausted):
            warm.evaluate({"x": 16.0, "y": 2.0})

    def test_in_run_revisits_stay_free_when_counting(self):
        # Revisits of a point the run itself evaluated do not consume
        # budget — identical to the paper's default cache semantics, so a
        # cold service run matches a plain calibrator even for algorithms
        # that revisit points (grid corners, coordinate/pattern stalls).
        objective = Objective(lambda v: v["x"], make_space(),
                              budget=EvaluationBudget(2),
                              record_cache_hits=True, count_cache_hits=True)
        objective.start()
        objective.evaluate({"x": 4.0, "y": 8.0})
        for _ in range(5):
            objective.evaluate({"x": 4.0, "y": 8.0})  # free revisits
        objective.evaluate({"x": 2.0, "y": 2.0})
        with pytest.raises(BudgetExhausted):
            objective.evaluate({"x": 8.0, "y": 8.0})

    def test_cold_service_semantics_match_plain_for_revisiting_algorithms(self):
        # The reviewer's scenario: 'coordinate' revisits points in-run; a
        # cold run with counting enabled must reproduce the plain run.
        space = make_space()
        fn = lambda v: (v["x"] - 4.0) ** 2 + (v["y"] - 9.0) ** 2  # noqa: E731
        plain = Calibrator(space, fn, algorithm="coordinate",
                           budget=EvaluationBudget(30), seed=1).run()
        cold = Calibrator(space, fn, algorithm="coordinate",
                          budget=EvaluationBudget(30), seed=1, cache=DictCache(),
                          record_cache_hits=True, count_cache_hits=True).run()
        assert cold.evaluations == plain.evaluations
        assert cold.best_values == plain.best_values
        assert cold.best_value == plain.best_value

    def test_fully_warm_calibration_reproduces_the_cold_run(self):
        space = make_space()
        fn = lambda v: (v["x"] - 4.0) ** 2 + (v["y"] - 9.0) ** 2  # noqa: E731
        shared = DictCache()
        cold = Calibrator(space, fn, algorithm="random", budget=EvaluationBudget(20),
                          seed=5, cache=shared,
                          record_cache_hits=True, count_cache_hits=True).run()
        calls = []
        warm = Calibrator(space, lambda v: calls.append(v) or fn(v), algorithm="random",
                          budget=EvaluationBudget(20), seed=5, cache=shared,
                          record_cache_hits=True, count_cache_hits=True).run()
        assert calls == []  # never touched the simulator
        assert warm.evaluations == 0
        assert warm.best_values == cold.best_values
        assert warm.best_value == cold.best_value
        assert len(warm.history) == len(cold.history)
