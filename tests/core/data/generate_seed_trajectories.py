"""Capture reference trajectories for the serial-parity fixture.

Run from the repository root (PYTHONPATH=src) to regenerate
``seed_trajectories.json``.  The checked-in fixture was captured at the
pre-ask/tell seed implementation (commit c0f3f5b), so the parity test in
``tests/core/test_ask_tell.py`` proves the ask/tell base class reproduces
the original blocking-loop trajectories byte for byte.  Do not regenerate
it from a post-refactor tree unless a trajectory change is intentional.
"""

import json
import os

import numpy as np

from repro.core import ALGORITHMS, Calibrator, EvaluationBudget, Parameter, ParameterSpace

SEED = 7
EVALUATIONS = 300
DIMENSION = 3


def make_space():
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(DIMENSION)])


def objective_for(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0 + float(
            np.sum(1.0 - np.cos(5.0 * np.pi * (unit - 0.37)))
        )

    return objective


def main():
    out = {"seed": SEED, "evaluations": EVALUATIONS, "dimension": DIMENSION, "trajectories": {}}
    for name in sorted(ALGORITHMS):
        space = make_space()
        calibrator = Calibrator(
            space,
            objective_for(space),
            algorithm=name,
            budget=EvaluationBudget(EVALUATIONS),
            seed=SEED,
        )
        result = calibrator.run()
        out["trajectories"][name] = [
            {"unit": list(e.unit), "value": e.value} for e in result.history
        ]
        print(f"{name:12s} {len(result.history)} evaluations, best {result.best_value:.6f}")
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "seed_trajectories.json")
    with open(path, "w") as handle:
        json.dump(out, handle)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
