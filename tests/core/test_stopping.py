"""Early-stopping criteria and their integration with the Calibrator."""

import numpy as np
import pytest

from repro.core import (
    Calibrator,
    EvaluationBudget,
    NoImprovementStopper,
    Parameter,
    ParameterSpace,
    RelativePlateauStopper,
    TargetValueStopper,
)
from repro.core.history import CalibrationHistory, Evaluation
from repro.core.stopping import StoppingBudget


def make_history(values):
    history = CalibrationHistory()
    for i, value in enumerate(values):
        history.record(
            Evaluation(index=i, values={"x": float(i)}, unit=(0.0,), value=float(value),
                       started_at=float(i), finished_at=float(i) + 0.5)
        )
    return history


class TestTargetValueStopper:
    def test_stops_when_target_reached(self):
        stopper = TargetValueStopper(5.0)
        assert not stopper.should_stop(make_history([10.0, 7.0]))
        assert stopper.should_stop(make_history([10.0, 5.0]))
        assert stopper.should_stop(make_history([10.0, 3.0, 8.0]))

    def test_empty_history_never_stops(self):
        assert not TargetValueStopper(5.0).should_stop(CalibrationHistory())

    def test_describe_mentions_target(self):
        assert "5" in TargetValueStopper(5.0).describe()


class TestNoImprovementStopper:
    def test_requires_patience_evaluations_beyond_best(self):
        stopper = NoImprovementStopper(patience=3)
        # Best value keeps improving: never stop.
        assert not stopper.should_stop(make_history([10, 9, 8, 7, 6]))
        # Improvement happened within the last 3 evaluations: keep going.
        assert not stopper.should_stop(make_history([10, 10, 10, 9]))
        # 3 evaluations since anything beat the early best: stop.
        assert stopper.should_stop(make_history([5, 9, 8, 7]))

    def test_min_delta_counts_only_meaningful_improvements(self):
        stopper = NoImprovementStopper(patience=2, min_delta=1.0)
        # The late values improve by less than min_delta: stop.
        assert stopper.should_stop(make_history([5.0, 4.9, 4.8]))
        # A genuine improvement within the window: continue.
        assert not stopper.should_stop(make_history([5.0, 4.9, 3.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            NoImprovementStopper(patience=0)
        with pytest.raises(ValueError):
            NoImprovementStopper(min_delta=-1)


class TestRelativePlateauStopper:
    def test_stops_on_flat_window(self):
        stopper = RelativePlateauStopper(window=3, fraction=0.05)
        improving = make_history([100, 80, 60, 40, 20])
        assert not stopper.should_stop(improving)
        flat = make_history([100, 50, 49.9, 49.8, 49.7])
        assert stopper.should_stop(flat)

    def test_short_history_never_stops(self):
        stopper = RelativePlateauStopper(window=10, fraction=0.01)
        assert not stopper.should_stop(make_history([100, 99]))

    def test_zero_best_value_edge_case(self):
        stopper = RelativePlateauStopper(window=2, fraction=0.5)
        assert stopper.should_stop(make_history([0.0, 0.0, 0.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            RelativePlateauStopper(window=1)
        with pytest.raises(ValueError):
            RelativePlateauStopper(fraction=1.5)


class TestStoppingBudgetAdapter:
    def test_unbound_adapter_never_exhausts(self):
        budget = StoppingBudget(TargetValueStopper(1.0))
        assert not budget.exhausted(100)

    def test_bound_adapter_follows_criterion(self):
        budget = StoppingBudget(TargetValueStopper(1.0))
        history = make_history([5.0, 0.5])
        budget.bind(history)
        assert budget.exhausted(2)
        assert "1" in budget.describe()


class TestCalibratorIntegration:
    def make_space(self):
        return ParameterSpace([Parameter("a", 2**10, 2**30), Parameter("b", 2**10, 2**30)])

    def objective(self, space):
        def fn(values):
            unit = space.to_unit_array(values)
            return float(np.sum((unit - 0.4) ** 2)) * 100.0
        return fn

    def test_target_stopper_cuts_the_run_short(self):
        space = self.make_space()
        unlimited = Calibrator(space, self.objective(space), "random",
                               EvaluationBudget(500), seed=3).run()
        stopped = Calibrator(space, self.objective(space), "random",
                             EvaluationBudget(500), seed=3,
                             stopping=TargetValueStopper(unlimited.best_value * 4 + 1.0)).run()
        assert stopped.evaluations < unlimited.evaluations
        assert stopped.best_value <= unlimited.best_value * 4 + 1.0

    def test_no_improvement_stopper_bounds_wasted_evaluations(self):
        space = self.make_space()
        result = Calibrator(space, self.objective(space), "random",
                            EvaluationBudget(2000), seed=1,
                            stopping=NoImprovementStopper(patience=25)).run()
        assert result.evaluations < 2000

    def test_budget_still_applies_without_stopping(self):
        space = self.make_space()
        result = Calibrator(space, self.objective(space), "random",
                            EvaluationBudget(30), seed=1,
                            stopping=TargetValueStopper(-1.0)).run()
        assert result.evaluations == 30
