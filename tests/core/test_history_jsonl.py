"""CalibrationHistory JSON Lines round-trip (the service's result format)."""

import json

import pytest

from repro.core import CalibrationHistory, Evaluation
from repro.core.serialization import evaluation_from_dict, evaluation_to_dict


def make_history():
    history = CalibrationHistory()
    history.record(Evaluation(index=0, values={"x": 4.0, "y": 8.0}, unit=(0.5, 0.75),
                              value=12.0, started_at=0.0, finished_at=1.5))
    history.record(Evaluation(index=1, values={"x": 2.0, "y": 2.0}, unit=(0.25, 0.25),
                              value=4.0, started_at=1.5, finished_at=2.0))
    history.record(Evaluation(index=2, values={"x": 4.0, "y": 8.0}, unit=(0.5, 0.75),
                              value=12.0, started_at=2.0, finished_at=2.0, cached=True))
    return history


class TestHistoryJsonl:
    def test_roundtrip_preserves_everything(self, tmp_path):
        history = make_history()
        path = history.to_jsonl(tmp_path / "history.jsonl")
        loaded = CalibrationHistory.from_jsonl(path)
        assert len(loaded) == len(history)
        for original, restored in zip(history, loaded):
            assert restored == original
        assert loaded.best.value == pytest.approx(4.0)
        assert loaded.best_so_far() == history.best_so_far()

    def test_one_json_document_per_line(self, tmp_path):
        path = make_history().to_jsonl(tmp_path / "history.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert records[0]["values"] == {"x": 4.0, "y": 8.0}
        assert "cached" not in records[0]  # only flagged entries carry it
        assert records[2]["cached"] is True

    def test_empty_history_roundtrip(self, tmp_path):
        path = CalibrationHistory().to_jsonl(tmp_path / "empty.jsonl")
        loaded = CalibrationHistory.from_jsonl(path)
        assert len(loaded) == 0
        assert loaded.best is None

    def test_evaluation_dict_roundtrip(self):
        evaluation = Evaluation(index=3, values={"x": 1.0}, unit=(0.0,), value=2.5,
                                started_at=0.5, finished_at=0.75, cached=True)
        assert evaluation_from_dict(evaluation_to_dict(evaluation)) == evaluation

    def test_blank_lines_are_ignored(self, tmp_path):
        path = make_history().to_jsonl(tmp_path / "history.jsonl")
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert len(CalibrationHistory.from_jsonl(path)) == 3
