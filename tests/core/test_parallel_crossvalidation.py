"""Parallel evaluation and cross-validation of calibrations."""

import numpy as np
import pytest

from repro.core import (
    EvaluationBudget,
    Fold,
    ParallelCalibrator,
    ParallelEvaluator,
    Parameter,
    ParameterSpace,
    TimeBudget,
    cross_validate,
    k_fold_splits,
    leave_one_out_splits,
    subset_splits,
)


def make_space(dimension=2):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


class _QuadraticObjective:
    """Picklable objective with a known optimum in unit coordinates."""

    def __init__(self, space, optimum=0.3):
        self.space = space
        self.optimum = optimum

    def __call__(self, values):
        unit = self.space.to_unit_array(values)
        return float(np.sum((unit - self.optimum) ** 2)) * 50.0


class TestParallelEvaluator:
    def test_serial_batch_records_every_candidate(self):
        space = make_space()
        evaluator = ParallelEvaluator(_QuadraticObjective(space), space, workers=2, mode="serial")
        batch = [space.from_unit_array([0.1, 0.1]), space.from_unit_array([0.9, 0.9])]
        values = evaluator.evaluate_batch(batch)
        assert len(values) == 2
        assert len(evaluator.history) == 2
        assert values[0] < values[1]  # closer to the optimum

    def test_thread_and_serial_agree(self):
        space = make_space()
        objective = _QuadraticObjective(space)
        batch = [space.from_unit_array([x, x]) for x in (0.0, 0.25, 0.5, 0.75, 1.0)]
        serial = ParallelEvaluator(objective, space, workers=1, mode="serial").evaluate_batch(batch)
        threaded = ParallelEvaluator(objective, space, workers=3, mode="thread").evaluate_batch(batch)
        assert serial == pytest.approx(threaded)

    def test_empty_batch_is_a_noop(self):
        space = make_space()
        evaluator = ParallelEvaluator(_QuadraticObjective(space), space, mode="serial")
        assert evaluator.evaluate_batch([]) == []
        assert len(evaluator.history) == 0

    def test_invalid_configuration(self):
        space = make_space()
        with pytest.raises(ValueError):
            ParallelEvaluator(_QuadraticObjective(space), space, workers=0)
        with pytest.raises(ValueError):
            ParallelEvaluator(_QuadraticObjective(space), space, mode="gpu")


class TestParallelCalibrator:
    def test_respects_evaluation_budget_exactly(self):
        space = make_space()
        calibrator = ParallelCalibrator(
            space, _QuadraticObjective(space), sampler="lhs", workers=3,
            mode="serial", batch_size=4, budget=EvaluationBudget(10), seed=1,
        )
        result = calibrator.run()
        assert result.evaluations == 10
        assert result.algorithm == "parallel-lhs"

    def test_time_budget_stops_the_run(self):
        space = make_space()
        calibrator = ParallelCalibrator(
            space, _QuadraticObjective(space), sampler="uniform", workers=2,
            mode="serial", batch_size=8, budget=TimeBudget(0.2), seed=1,
        )
        result = calibrator.run()
        assert result.evaluations >= 8  # at least one batch completed

    def test_process_mode_with_picklable_objective(self):
        space = make_space()
        calibrator = ParallelCalibrator(
            space, _QuadraticObjective(space), sampler="sobol", workers=2,
            mode="process", batch_size=4, budget=EvaluationBudget(8), seed=2,
        )
        result = calibrator.run()
        assert result.evaluations == 8
        assert result.best_value < 50.0

    def test_same_seed_reproduces_candidates(self):
        space = make_space()

        def run(seed):
            calibrator = ParallelCalibrator(
                space, _QuadraticObjective(space), sampler="lhs", workers=1,
                mode="serial", batch_size=5, budget=EvaluationBudget(10), seed=seed,
            )
            return [round(e.value, 10) for e in calibrator.run().history]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_invalid_batch_size(self):
        space = make_space()
        with pytest.raises(ValueError):
            ParallelCalibrator(space, _QuadraticObjective(space), batch_size=0, workers=1)


class TestSplits:
    def test_k_fold_covers_every_key_once(self):
        keys = list(range(10))
        folds = k_fold_splits(keys, 5, seed=1)
        assert len(folds) == 5
        tested = [k for fold in folds for k in fold.test]
        assert sorted(tested) == keys
        for fold in folds:
            assert sorted(fold.train + fold.test) == keys

    def test_k_fold_validation(self):
        with pytest.raises(ValueError):
            k_fold_splits([1, 2, 3], 1)
        with pytest.raises(ValueError):
            k_fold_splits([1, 2], 3)

    def test_leave_one_out(self):
        folds = leave_one_out_splits(["a", "b", "c"])
        assert len(folds) == 3
        assert {fold.test[0] for fold in folds} == {"a", "b", "c"}
        for fold in folds:
            assert len(fold.train) == 2

    def test_subset_splits_match_table5_counts(self):
        # The paper's Table V: 5 single-element subsets, 10 pairs, 10 triples.
        universe = [0.0, 0.3, 0.5, 0.7, 1.0]
        assert len(subset_splits(universe, 1)) == 5
        assert len(subset_splits(universe, 2)) == 10
        assert len(subset_splits(universe, 3)) == 10

    def test_subset_splits_with_explicit_test_keys(self):
        folds = subset_splits([1, 2, 3], 3, test_keys=[1, 2, 3, 4])
        assert folds[0].test == (4,)

    def test_fold_rejects_overlap_and_empty_train(self):
        with pytest.raises(ValueError):
            Fold((1, 2), (2, 3))
        with pytest.raises(ValueError):
            Fold((), (1,))


class TestCrossValidate:
    def test_reports_train_and_test_scores(self):
        space = make_space()
        # Scenario keys shift the optimum: training on a subset biases the
        # calibration towards that subset's mean optimum.
        optima = {"a": 0.2, "b": 0.4, "c": 0.8}

        def builder(train_keys):
            target = float(np.mean([optima[k] for k in train_keys]))
            return _QuadraticObjective(space, optimum=target)

        def evaluator(values, test_keys):
            target = float(np.mean([optima[k] for k in test_keys]))
            return _QuadraticObjective(space, optimum=target)(values)

        result = cross_validate(
            builder, evaluator, leave_one_out_splits(list(optima)), space,
            algorithm="random", budget=60, seed=3,
        )
        assert len(result.folds) == 3
        summary = result.summary()
        assert summary["best"] <= summary["median"] <= summary["worst"]
        # Held-out scenarios are harder than the training ones on average.
        assert summary["mean_gap"] > 0.0

    def test_integer_budget_is_an_evaluation_count(self):
        space = make_space()
        result = cross_validate(
            lambda train: _QuadraticObjective(space),
            lambda values, test: 0.0,
            k_fold_splits([1, 2, 3, 4], 2, seed=0),
            space,
            budget=15,
            seed=1,
        )
        assert all(fold.evaluations == 15 for fold in result.folds)
