"""Budgets, evaluation history and the budget-aware objective wrapper."""

import time

import pytest

from repro.core.budget import CombinedBudget, EvaluationBudget, TimeBudget
from repro.core.evaluation import BudgetExhausted, Objective
from repro.core.history import CalibrationHistory, Evaluation
from repro.core.parameters import Parameter, ParameterSpace


def make_space():
    return ParameterSpace([Parameter("x", 1.0, 2.0**10), Parameter("y", 1.0, 2.0**10)])


class TestBudgets:
    def test_evaluation_budget(self):
        budget = EvaluationBudget(3)
        assert not budget.exhausted(0)
        assert not budget.exhausted(2)
        assert budget.exhausted(3)
        assert "3" in budget.describe()
        with pytest.raises(ValueError):
            EvaluationBudget(0)

    def test_time_budget(self):
        budget = TimeBudget(0.05)
        budget.start()
        assert not budget.exhausted(0)
        time.sleep(0.06)
        assert budget.exhausted(0)
        with pytest.raises(ValueError):
            TimeBudget(0.0)

    def test_time_budget_autostarts_on_first_check(self):
        budget = TimeBudget(100.0)
        assert not budget.exhausted(0)
        assert budget.elapsed >= 0.0

    def test_combined_budget(self):
        budget = CombinedBudget([EvaluationBudget(2), TimeBudget(1000.0)])
        budget.start()
        assert not budget.exhausted(1)
        assert budget.exhausted(2)
        assert "and" in budget.describe()
        with pytest.raises(ValueError):
            CombinedBudget([])


class TestHistory:
    def make_eval(self, index, value, finished_at=None):
        return Evaluation(
            index=index,
            values={"x": float(index)},
            unit=(0.0, 0.0),
            value=value,
            started_at=float(index),
            finished_at=finished_at if finished_at is not None else float(index) + 0.5,
        )

    def test_best_tracking(self):
        history = CalibrationHistory()
        for i, value in enumerate([10.0, 5.0, 7.0, 3.0, 9.0]):
            history.record(self.make_eval(i, value))
        assert history.best.value == 3.0
        assert len(history) == 5
        assert history.best_so_far() == [10.0, 5.0, 5.0, 3.0, 3.0]
        assert history.value_curve() == [10.0, 5.0, 7.0, 3.0, 9.0]

    def test_best_over_time_and_at_time(self):
        history = CalibrationHistory()
        for i, value in enumerate([10.0, 5.0, 7.0]):
            history.record(self.make_eval(i, value, finished_at=float(i + 1)))
        series = history.best_over_time()
        assert series == [(1.0, 10.0), (2.0, 5.0), (3.0, 5.0)]
        assert history.best_at_time(0.5) is None
        assert history.best_at_time(1.5) == 10.0
        assert history.best_at_time(10.0) == 5.0

    def test_total_evaluation_time(self):
        history = CalibrationHistory()
        history.record(self.make_eval(0, 1.0))
        history.record(self.make_eval(1, 2.0))
        assert history.total_evaluation_time == pytest.approx(1.0)

    def test_empty_history(self):
        history = CalibrationHistory()
        assert history.best is None
        assert history.best_so_far() == []


class TestObjective:
    def test_records_history_and_best(self):
        space = make_space()
        objective = Objective(lambda v: v["x"] + v["y"], space)
        objective.start()
        objective.evaluate({"x": 4.0, "y": 8.0})
        objective.evaluate({"x": 2.0, "y": 2.0})
        assert objective.evaluation_count == 2
        assert objective.best.value == pytest.approx(4.0)
        assert objective.best_values() == {"x": 2.0, "y": 2.0}

    def test_cache_hits_do_not_consume_budget(self):
        space = make_space()
        calls = []

        def fn(values):
            calls.append(values)
            return values["x"]

        objective = Objective(fn, space, budget=EvaluationBudget(2))
        objective.start()
        objective.evaluate({"x": 4.0, "y": 8.0})
        objective.evaluate({"x": 4.0, "y": 8.0})  # cache hit
        assert len(calls) == 1
        objective.evaluate({"x": 2.0, "y": 2.0})
        with pytest.raises(BudgetExhausted):
            objective.evaluate({"x": 8.0, "y": 8.0})
        # Cached points can still be queried after exhaustion.
        assert objective.evaluate({"x": 4.0, "y": 8.0}) == pytest.approx(4.0)

    def test_cache_can_be_disabled(self):
        space = make_space()
        calls = []
        objective = Objective(lambda v: calls.append(1) or 0.0, space, cache=False)
        objective.start()
        objective.evaluate({"x": 4.0, "y": 8.0})
        objective.evaluate({"x": 4.0, "y": 8.0})
        assert len(calls) == 2

    def test_evaluate_unit_clips_and_converts(self):
        space = make_space()
        seen = {}

        def fn(values):
            seen.update(values)
            return 0.0

        objective = Objective(fn, space)
        objective.start()
        objective.evaluate_unit([2.0, -1.0])
        assert seen["x"] == pytest.approx(2.0**10)
        assert seen["y"] == pytest.approx(1.0)

    def test_best_values_before_any_evaluation_raises(self):
        objective = Objective(lambda v: 0.0, make_space())
        with pytest.raises(ValueError):
            objective.best_values()

    def test_evaluation_dataclass_duration(self):
        e = Evaluation(0, {"x": 1.0}, (0.1,), 5.0, 1.0, 3.5)
        assert e.duration == pytest.approx(2.5)
