"""Checkpoint/resume determinism for every registered algorithm.

The contract: run N evaluations, snapshot the calibrator (algorithm
state + rng state + history), load the snapshot into a fresh calibrator
in a fresh process (emulated by a JSON round-trip), and the remaining
trajectory — every evaluation, in order — must be identical to a run
that was never interrupted.
"""

import json

import numpy as np
import pytest

from repro.core import (
    ALGORITHMS,
    Calibrator,
    EvaluationBudget,
    Parameter,
    ParameterSpace,
    TimeBudget,
)

TOTAL = 90
CUT = 37  # deliberately mid-generation for every population algorithm
SEED = 11


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def objective_for(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    return objective


def trajectory(result):
    return [(e.unit, e.value, e.cached) for e in result.history]


class TestResumeDeterminism:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_interrupted_run_finishes_identically(self, name):
        space = make_space()
        uninterrupted = Calibrator(
            space, objective_for(space), algorithm=name,
            budget=EvaluationBudget(TOTAL), seed=SEED,
        ).run()

        # First leg: stop after CUT evaluations, keeping the snapshot taken
        # exactly there.
        snapshots = []
        Calibrator(
            space, objective_for(space), algorithm=name,
            budget=EvaluationBudget(CUT), seed=SEED,
        ).run(checkpoint_every=CUT, on_checkpoint=snapshots.append)
        assert snapshots, f"{name}: no checkpoint was emitted"
        snapshot = json.loads(json.dumps(snapshots[-1]))  # fresh-process emulation
        # checkpoint_every counts completed steps; algorithms that revisit
        # cached points have fewer *recorded* evaluations than steps.
        assert 0 < len(snapshot["history"]) <= CUT

        # Second leg: a fresh calibrator resumes and finishes the budget.
        resumed = Calibrator(
            space, objective_for(space), algorithm=name,
            budget=EvaluationBudget(TOTAL), seed=SEED,
        ).run(resume=snapshot)
        assert trajectory(resumed) == trajectory(uninterrupted)
        assert resumed.best_value == uninterrupted.best_value
        assert resumed.best_values == uninterrupted.best_values

    def test_periodic_checkpoints_count_evaluations(self):
        space = make_space(2)
        snapshots = []
        Calibrator(
            space, objective_for(space), algorithm="random",
            budget=EvaluationBudget(30), seed=0,
        ).run(checkpoint_every=10, on_checkpoint=snapshots.append)
        assert [len(s["history"]) for s in snapshots] == [10, 20, 30]

    def test_resume_with_wrong_algorithm_is_rejected(self):
        space = make_space(2)
        snapshots = []
        Calibrator(
            space, objective_for(space), algorithm="random",
            budget=EvaluationBudget(10), seed=0,
        ).run(checkpoint_every=5, on_checkpoint=snapshots.append)
        other = Calibrator(
            space, objective_for(space), algorithm="lhs",
            budget=EvaluationBudget(20), seed=0,
        )
        with pytest.raises(ValueError):
            other.run(resume=snapshots[-1])

    def test_resume_continues_the_wall_clock(self):
        """A resumed run inherits the checkpoint's elapsed time: time
        budgets get only their remaining seconds (not a fresh allowance)
        and new history timestamps stay monotone after the spliced-in
        records."""
        space = make_space(2)
        snapshots = []
        Calibrator(
            space, objective_for(space), algorithm="random",
            budget=EvaluationBudget(10), seed=0,
        ).run(checkpoint_every=10, on_checkpoint=snapshots.append)
        snapshot = snapshots[-1]
        assert snapshot["elapsed"] > 0

        # Time budget: a checkpoint claiming more elapsed time than the
        # whole allowance leaves nothing to spend — no new evaluations.
        stale = {**snapshot, "elapsed": 3600.0}
        resumed = Calibrator(
            space, objective_for(space), algorithm="random",
            budget=TimeBudget(5.0), seed=0,
        ).run(resume=stale)
        assert resumed.evaluations == 10  # only the restored records

        # Monotone timestamps across the splice.
        continued = Calibrator(
            space, objective_for(space), algorithm="random",
            budget=EvaluationBudget(20), seed=0,
        ).run(resume=json.loads(json.dumps(snapshot)))
        stamps = [e.started_at for e in continued.history]
        assert stamps == sorted(stamps)
        assert stamps[10] >= snapshot["elapsed"]

    def test_resume_restores_budget_accounting(self):
        """A resumed run performs only the missing evaluations."""
        space = make_space(2)
        calls = {"n": 0}

        def counting_objective(values):
            calls["n"] += 1
            unit = space.to_unit_array(values)
            return float(np.sum((unit - 0.37) ** 2))

        snapshots = []
        Calibrator(
            space, counting_objective, algorithm="lhs",
            budget=EvaluationBudget(20), seed=3,
        ).run(checkpoint_every=20, on_checkpoint=snapshots.append)
        assert calls["n"] == 20
        calls["n"] = 0
        resumed = Calibrator(
            space, counting_objective, algorithm="lhs",
            budget=EvaluationBudget(50), seed=3,
        ).run(resume=json.loads(json.dumps(snapshots[-1])))
        assert calls["n"] == 30  # not 50: the first 20 came from the snapshot
        assert resumed.evaluations == 50
