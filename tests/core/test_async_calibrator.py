"""AsyncCalibrator: out-of-order tells, speculative asks, claim/lease.

Completion order is shuffled deterministically by giving every candidate
a latency keyed on its own coordinates, so async runs genuinely exercise
out-of-order completion while staying reproducible.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    ALGORITHMS,
    AsyncCalibrator,
    Calibrator,
    CombinedBudget,
    EvaluationBudget,
    OrderedTellAdapter,
    Parameter,
    ParameterSpace,
    TimeBudget,
    get_algorithm,
)

NATIVE_ASYNC = ["random", "sobol", "lhs", "tpe"]
ORDERED = ["cmaes", "de", "nelder-mead", "grid", "coordinate"]


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def quadratic(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    return objective


def shuffling(space, scale=0.004):
    """A quadratic whose per-point latency shuffles completion order."""
    inner = quadratic(space)

    def objective(values):
        import random as _random

        seed = repr(sorted((k, float(v)) for k, v in values.items()))
        time.sleep(_random.Random(seed).uniform(0.0, scale))
        return inner(values)

    return objective


def points(result):
    return [(e.unit, e.value) for e in result.history]


class TestCapabilityFlag:
    def test_steady_state_samplers_are_async_native(self):
        for name in NATIVE_ASYNC:
            assert get_algorithm(name).supports_async_tell, name

    def test_population_and_line_search_algorithms_are_ordered(self):
        for name in ORDERED:
            assert not get_algorithm(name).supports_async_tell, name

    def test_forcing_native_tells_on_ordered_algorithm_is_rejected(self):
        space = make_space(2)
        with pytest.raises(ValueError, match="out-of-order"):
            AsyncCalibrator(space, quadratic(space), algorithm="cmaes",
                            ordered_tells=False)


class TestOutOfOrderTellsAtProtocolLevel:
    def test_async_native_tell_accepts_any_completion_order(self):
        algorithm = get_algorithm("tpe", warmup=4)
        algorithm.setup(make_space(2))
        rng = np.random.default_rng(0)
        candidates = algorithm.ask(rng, 4)
        assert len(candidates) == 4
        # Tell in reverse completion order, one at a time.
        for candidate in reversed(candidates):
            algorithm.tell([candidate], [float(np.sum(candidate))])
        assert len(algorithm._points) == 4

    def test_async_native_ask_keeps_proposing_before_tells(self):
        """Speculative asks: the sampler never stalls on outstanding work."""
        algorithm = get_algorithm("random")
        algorithm.setup(make_space(2))
        rng = np.random.default_rng(0)
        first = algorithm.ask(rng, 3)
        second = algorithm.ask(rng, 3)  # no tells in between
        assert len(first) == 3 and len(second) == 3

    def test_telling_a_never_asked_candidate_raises(self):
        algorithm = get_algorithm("random")
        algorithm.setup(make_space(2))
        algorithm.ask(np.random.default_rng(0), 2)
        with pytest.raises(ValueError, match="never asked"):
            algorithm.tell([np.array([0.5, 0.5])], [1.0])

    def test_ordered_adapter_releases_in_ask_order(self):
        class Recording(list):
            pass

        algorithm = get_algorithm("random")
        algorithm.setup(make_space(2))
        told = Recording()
        original = algorithm.tell
        algorithm.tell = lambda c, v: (told.append(v[0]), original(c, v))
        adapter = OrderedTellAdapter(algorithm)
        candidates = algorithm.ask(np.random.default_rng(0), 3)
        assert adapter.complete(2, candidates[2], 2.0) == []
        assert adapter.complete(0, candidates[0], 0.0) == [(0, candidates[0], 0.0)]
        released = adapter.complete(1, candidates[1], 1.0)
        assert [seq for seq, _, _ in released] == [1, 2]
        assert told == [0.0, 1.0, 2.0]
        assert adapter.buffered == 0


class TestAdapterByteForByteParity:
    @pytest.mark.parametrize("name", ["cmaes", "de", "nelder-mead", "grid"])
    def test_seeded_async_run_matches_serial_trajectory(self, name):
        """The buffering adapter restores ask order, so ordered algorithms
        reproduce the serial trajectory byte for byte under genuinely
        shuffled completion order."""
        space = make_space(3)
        serial = Calibrator(
            space, quadratic(space), algorithm=name,
            budget=EvaluationBudget(40), seed=7,
        ).run()
        asynchronous = AsyncCalibrator(
            space, shuffling(space), algorithm=name,
            budget=EvaluationBudget(40), seed=7, workers=4, mode="thread",
        ).run()
        assert points(asynchronous) == points(serial)
        assert asynchronous.best_value == serial.best_value
        assert asynchronous.best_values == serial.best_values

    def test_forced_adapter_on_native_sampler_matches_serial(self):
        space = make_space(3)
        serial = Calibrator(
            space, quadratic(space), algorithm="lhs",
            budget=EvaluationBudget(48), seed=3,
        ).run()
        forced = AsyncCalibrator(
            space, shuffling(space), algorithm="lhs",
            budget=EvaluationBudget(48), seed=3, workers=4, mode="thread",
            ordered_tells=True,
        ).run()
        assert points(forced) == points(serial)


class TestNativeAsyncDeterminism:
    @pytest.mark.parametrize("name", ["random", "sobol", "lhs"])
    def test_shuffled_completion_visits_the_serial_point_set(self, name):
        """Samplers with a tell-independent proposal stream stay
        deterministic under shuffled completion order: same points, same
        values, same budget — only the history order may differ."""
        space = make_space(3)
        serial = Calibrator(
            space, quadratic(space), algorithm=name,
            budget=EvaluationBudget(32), seed=5,
        ).run()
        asynchronous = AsyncCalibrator(
            space, shuffling(space), algorithm=name,
            budget=EvaluationBudget(32), seed=5, workers=4, mode="thread",
        ).run()
        assert asynchronous.evaluations == 32
        assert sorted(points(asynchronous)) == sorted(points(serial))
        assert asynchronous.best_value == serial.best_value

    @pytest.mark.parametrize("name", ["random", "sobol", "lhs"])
    def test_two_async_runs_are_reproducible(self, name):
        """Same seed, same (deterministic) latencies -> same point set.
        (TPE is excluded: its proposals condition on completed results,
        so its trajectory legitimately depends on completion timing.)"""
        space = make_space(2)

        def run():
            return AsyncCalibrator(
                space, shuffling(space), algorithm=name,
                budget=EvaluationBudget(24), seed=9, workers=3, mode="thread",
            ).run()

        first, second = run(), run()
        assert sorted(points(first)) == sorted(points(second))

    def test_tpe_consumes_out_of_order_results_natively(self):
        """TPE's model updates on every completion, in whatever order they
        arrive; the run stays valid (exact budget, every point told) even
        though its trajectory may differ from serial."""
        space = make_space(2)
        result = AsyncCalibrator(
            space, shuffling(space), algorithm="tpe",
            algorithm_options={"warmup": 6}, budget=EvaluationBudget(24),
            seed=9, workers=3, mode="thread",
        ).run()
        assert result.evaluations == 24
        assert len(result.history) == 24


class TestDriverMechanics:
    def test_every_builtin_algorithm_runs_async_with_exact_budget(self):
        space = make_space(2)
        for name in sorted(ALGORITHMS):
            result = AsyncCalibrator(
                space, quadratic(space), algorithm=name, workers=3, mode="serial",
                budget=EvaluationBudget(25), seed=2,
            ).run()
            assert result.evaluations == 25, name

    def test_combined_budget_does_not_overshoot(self):
        space = make_space(2)
        budget = CombinedBudget([TimeBudget(3600.0), EvaluationBudget(10)])
        result = AsyncCalibrator(
            space, quadratic(space), algorithm="random", workers=4, mode="thread",
            budget=budget, seed=0,
        ).run()
        assert result.evaluations == 10

    def test_max_pending_bounds_in_flight_work(self):
        space = make_space(2)
        active = {"now": 0, "max": 0}
        lock = threading.Lock()

        def tracking(values):
            with lock:
                active["now"] += 1
                active["max"] = max(active["max"], active["now"])
            time.sleep(0.003)
            with lock:
                active["now"] -= 1
            return float(np.sum(space.to_unit_array(values)))

        AsyncCalibrator(
            space, tracking, algorithm="random", workers=8, mode="thread",
            max_pending=3, budget=EvaluationBudget(24), seed=0,
        ).run()
        assert active["max"] <= 3

    def test_pool_stays_saturated_under_skewed_latencies(self):
        """The point of the driver: with one straggler per 'batch', the
        async pool keeps at least two evaluations overlapping."""
        space = make_space(2)
        active = {"now": 0, "max": 0}
        count = {"n": 0}
        lock = threading.Lock()

        def skewed(values):
            with lock:
                count["n"] += 1
                slow = count["n"] % 4 == 1
                active["now"] += 1
                active["max"] = max(active["max"], active["now"])
            time.sleep(0.02 if slow else 0.001)
            with lock:
                active["now"] -= 1
            return float(np.sum(space.to_unit_array(values)))

        AsyncCalibrator(
            space, skewed, algorithm="random", workers=4, mode="thread",
            budget=EvaluationBudget(32), seed=0,
        ).run()
        assert active["max"] >= 2

    def test_objective_failure_propagates_and_closes_the_pool(self):
        space = make_space(2)

        def broken(values):
            raise RuntimeError("simulator exploded")

        calibrator = AsyncCalibrator(
            space, broken, algorithm="random", workers=2, mode="thread",
            budget=EvaluationBudget(8), seed=0,
        )
        with pytest.raises(RuntimeError, match="simulator exploded"):
            calibrator.run()

    def test_warm_cache_replays_without_dispatching(self):
        from repro.core import DictCache

        space = make_space(2)
        calls = {"n": 0}

        def counting(values):
            calls["n"] += 1
            return float(np.sum((space.to_unit_array(values) - 0.37) ** 2))

        shared = DictCache()
        cold = AsyncCalibrator(
            space, counting, algorithm="lhs", workers=2, mode="thread",
            budget=EvaluationBudget(20), seed=5, cache=shared,
        ).run()
        assert calls["n"] == 20
        warm_driver = AsyncCalibrator(
            space, counting, algorithm="lhs", workers=2, mode="thread",
            budget=EvaluationBudget(20), seed=5, cache=shared,
            record_cache_hits=True, count_cache_hits=True,
        )
        warm = warm_driver.run()
        assert calls["n"] == 20  # nothing new was simulated
        assert warm_driver.cache_hits == 20
        assert warm.evaluations == 0
        assert warm.best_value == cold.best_value

    def test_in_run_duplicates_dispatch_once(self):
        """Two in-flight copies of the same point cost one dispatch — the
        second rides on the first's result as a free in-run revisit."""
        from repro.core.algorithms import CalibrationAlgorithm

        class Duplicating(CalibrationAlgorithm):
            name = "duplicating-async"
            supports_async_tell = True

            def _setup(self):
                self._gen = 0

            def _generate(self, rng, n):
                if self._gen >= 100:
                    return None
                self._gen += 1
                point = np.full(2, 0.01 * self._gen)
                return [point, point.copy()]

        space = make_space(2)
        calls = {"n": 0}
        lock = threading.Lock()

        def counting(values):
            with lock:
                calls["n"] += 1
            time.sleep(0.002)
            return float(np.sum(space.to_unit_array(values)))

        result = AsyncCalibrator(
            space, counting, algorithm=Duplicating(), workers=4, mode="thread",
            budget=EvaluationBudget(6), seed=0,
        ).run()
        assert calls["n"] == 6
        assert result.evaluations == 6


class TestClaimLeaseAcrossDrivers:
    def test_concurrent_async_drivers_compute_each_point_once(self):
        from repro.service import InMemoryStore, StoreBackedCache

        space = make_space(3)
        store = InMemoryStore()
        lock = threading.Lock()
        calls = []

        def slow(values):
            with lock:
                calls.append(dict(values))
            time.sleep(0.003)
            return float(np.sum((space.to_unit_array(values) - 0.37) ** 2))

        def run(seed):
            cache = StoreBackedCache(store, "fp", dedupe_in_flight=True, lease_ttl=30.0)
            return AsyncCalibrator(
                space, slow, algorithm="grid", workers=2, mode="thread",
                budget=EvaluationBudget(27), seed=seed, cache=cache,
                record_cache_hits=True, count_cache_hits=True,
            ).run()

        results = [None, None]
        threads = [
            threading.Thread(target=lambda i=i: results.__setitem__(i, run(i + 1)))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 27  # the 3^3 lattice, once across both drivers
        assert results[0].best_value == results[1].best_value
        assert store.lease_count() == 0

    def test_expired_lease_is_taken_over(self):
        """A leader that died without publishing stalls its point only
        until the lease TTL; the deferred driver then computes it."""
        from repro.service import InMemoryStore, StoreBackedCache

        space = make_space(2)
        store = InMemoryStore()
        dead = StoreBackedCache(store, "fp", lease_ttl=0.05)
        live = StoreBackedCache(store, "fp", lease_ttl=0.05)

        # The dead driver claims the run's first point and never publishes
        # it (same seed, same sampler => same first candidate).
        algorithm = get_algorithm("random")
        algorithm.setup(space)
        first_unit = algorithm.ask(np.random.default_rng(0), 1)[0]
        first_values = space.from_unit_array(space.clip_unit(first_unit))
        from repro.core.evaluation import Claim

        assert dead.claim((), first_values).status == Claim.CLAIMED

        result = AsyncCalibrator(
            space, quadratic(space), algorithm="random", workers=2, mode="thread",
            budget=EvaluationBudget(4), seed=0, cache=live,
        ).run()
        assert result.evaluations == 4  # including the taken-over point
