"""Calibration algorithms on synthetic objectives.

Each algorithm must (i) respect the budget machinery, (ii) make progress on
a smooth synthetic objective whose optimum is known, and (iii) behave
deterministically for a fixed seed.
"""

import math

import numpy as np
import pytest

from repro.core import (
    ALGORITHMS,
    Calibrator,
    EvaluationBudget,
    Parameter,
    ParameterSpace,
    TimeBudget,
    get_algorithm,
)
from repro.core.algorithms.grid import GridSearch


def make_space(dimension=3):
    return ParameterSpace(
        [Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)]
    )


def quadratic_objective(space, optimum_unit=0.37):
    """Distance (in unit space) to a known optimum — smooth and convex."""

    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - optimum_unit) ** 2)) * 100.0

    return objective


ALL_ALGORITHMS = sorted(ALGORITHMS)


class TestRegistry:
    def test_expected_algorithms_registered(self):
        for name in ("random", "grid", "gdfix", "gddyn", "lhs", "coordinate",
                     "annealing", "bayesian"):
            assert name in ALGORITHMS

    def test_get_algorithm_aliases_and_errors(self):
        assert get_algorithm("GD").name == "gdfix"
        assert get_algorithm("bo").name == "bayesian"
        assert get_algorithm("gddyn").dynamic is True
        instance = get_algorithm("random")
        assert get_algorithm(instance) is instance
        with pytest.raises(KeyError):
            get_algorithm("simulated quantum annealing")


class TestGridConstruction:
    def test_level_coordinates(self):
        assert GridSearch.level_coordinates(0) == [0.0, 1.0]
        assert GridSearch.level_coordinates(1) == [0.0, 0.5, 1.0]
        assert len(GridSearch.level_coordinates(3)) == 9

    def test_new_coordinates_are_midpoints(self):
        assert GridSearch.new_coordinates(0) == [0.0, 1.0]
        assert GridSearch.new_coordinates(1) == [0.5]
        assert GridSearch.new_coordinates(2) == [0.25, 0.75]

    def test_grid_visits_corners_first(self):
        space = make_space(2)
        visited = []

        def objective(values):
            visited.append(space.to_unit_array(values))
            return 1.0

        calibrator = Calibrator(space, objective, algorithm="grid",
                                budget=EvaluationBudget(4), seed=0)
        calibrator.run()
        corners = {tuple(np.round(v, 6)) for v in visited}
        assert corners == {(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)}


class TestProgressOnSyntheticObjective:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_beats_random_single_sample_baseline(self, name):
        """With 120 evaluations every algorithm gets close to the optimum of
        a smooth 3-d bowl (value at the optimum is 0, worst case ~120)."""
        space = make_space(3)
        objective = quadratic_objective(space)
        budget = EvaluationBudget(120)
        calibrator = Calibrator(space, objective, algorithm=name, budget=budget, seed=3)
        result = calibrator.run()
        assert result.evaluations <= 120
        assert result.best_value < 20.0, f"{name} did not make progress"

    @pytest.mark.parametrize("name", ["gdfix", "gddyn", "coordinate", "bayesian"])
    def test_local_methods_get_very_close(self, name):
        space = make_space(2)
        objective = quadratic_objective(space)
        calibrator = Calibrator(space, objective, algorithm=name,
                                budget=EvaluationBudget(150), seed=5)
        result = calibrator.run()
        assert result.best_value < 2.0

    @pytest.mark.parametrize("name", ["random", "gdfix", "grid", "lhs"])
    def test_deterministic_given_seed(self, name):
        space = make_space(2)

        def run_once():
            calibrator = Calibrator(space, quadratic_objective(space), algorithm=name,
                                    budget=EvaluationBudget(40), seed=11)
            return calibrator.run()

        first, second = run_once(), run_once()
        assert first.best_value == pytest.approx(second.best_value)
        assert first.best_values == second.best_values

    def test_different_seeds_explore_differently(self):
        space = make_space(2)
        results = set()
        for seed in (1, 2, 3):
            calibrator = Calibrator(space, quadratic_objective(space), algorithm="random",
                                    budget=EvaluationBudget(10), seed=seed)
            results.add(round(calibrator.run().best_value, 9))
        assert len(results) > 1


class TestBudgetsAndResults:
    def test_time_budget_stops_algorithms(self):
        space = make_space(2)
        calibrator = Calibrator(space, quadratic_objective(space), algorithm="random",
                                budget=TimeBudget(0.2), seed=0)
        result = calibrator.run()
        assert result.elapsed < 5.0
        assert result.evaluations >= 1

    def test_result_contains_history_and_summary(self):
        space = make_space(2)
        calibrator = Calibrator(space, quadratic_objective(space), algorithm="random",
                                budget=EvaluationBudget(25), seed=0)
        result = calibrator.run()
        assert result.algorithm == "random"
        assert len(result.history) == result.evaluations == 25
        assert result.best_value == pytest.approx(min(result.history.value_curve()))
        assert "random" in result.summary()
        curve = result.history.best_so_far()
        assert all(curve[i + 1] <= curve[i] + 1e-12 for i in range(len(curve) - 1))

    def test_best_values_lie_within_bounds(self):
        space = make_space(3)
        calibrator = Calibrator(space, quadratic_objective(space), algorithm="annealing",
                                budget=EvaluationBudget(60), seed=2)
        result = calibrator.run()
        for parameter in space:
            assert parameter.low <= result.best_values[parameter.name] <= parameter.high

    def test_gradient_descent_on_multimodal_objective_restarts(self):
        """A sinusoidal bumpy objective: restarts should still find a decent
        basin within the budget."""
        space = make_space(2)

        def objective(values):
            unit = space.to_unit_array(values)
            return float(
                10 * np.sum((unit - 0.6) ** 2)
                + np.sum(1 - np.cos(6 * math.pi * (unit - 0.6)))
            )

        calibrator = Calibrator(space, objective, algorithm="gdfix",
                                budget=EvaluationBudget(200), seed=4)
        result = calibrator.run()
        assert result.best_value < 2.0
