"""The ask/tell protocol: serial parity, batching semantics, registry kwargs.

The heart of this file is the parity test: the serial driver on the new
ask/tell base class must reproduce, byte for byte, the trajectories of the
original blocking-loop implementations.  The reference trajectories in
``data/seed_trajectories.json`` were captured from the pre-ask/tell seed
code (see ``data/generate_seed_trajectories.py``), so any behavioural
drift in the migration fails here with the exact evaluation index.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    ALGORITHMS,
    Calibrator,
    EvaluationBudget,
    Parameter,
    ParameterSpace,
    get_algorithm,
)
from repro.core.algorithms import CalibrationAlgorithm
from repro.core.algorithms.cmaes import CMAES
from repro.core.algorithms.differential_evolution import DifferentialEvolution

FIXTURE = json.loads(
    (Path(__file__).parent / "data" / "seed_trajectories.json").read_text()
)


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def fixture_objective(space):
    """The synthetic objective the fixture was captured with."""

    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0 + float(
            np.sum(1.0 - np.cos(5.0 * np.pi * (unit - 0.37)))
        )

    return objective


def quadratic_objective(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    return objective


class TestSerialParityWithSeedImplementations:
    def test_fixture_covers_every_registered_algorithm(self):
        assert sorted(FIXTURE["trajectories"]) == sorted(ALGORITHMS)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_trajectory_is_byte_identical_to_seed(self, name):
        reference = FIXTURE["trajectories"][name]
        space = make_space(FIXTURE["dimension"])
        result = Calibrator(
            space,
            fixture_objective(space),
            algorithm=name,
            budget=EvaluationBudget(FIXTURE["evaluations"]),
            seed=FIXTURE["seed"],
        ).run()
        got = [{"unit": list(e.unit), "value": e.value} for e in result.history]
        assert len(got) == len(reference)
        for i, (g, r) in enumerate(zip(got, reference)):
            assert g["unit"] == r["unit"], f"{name}: unit diverged at evaluation {i}"
            assert g["value"] == r["value"], f"{name}: value diverged at evaluation {i}"


class TestProtocol:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_builtin_algorithms_are_native_ask_tell(self, name):
        assert get_algorithm(name).is_ask_tell

    def test_ask_before_setup_raises(self):
        algorithm = get_algorithm("random")
        with pytest.raises(RuntimeError):
            algorithm.ask(np.random.default_rng(0), 1)

    def test_tell_more_than_asked_raises(self):
        algorithm = get_algorithm("random")
        algorithm.setup(make_space(2))
        rng = np.random.default_rng(0)
        candidates = algorithm.ask(rng, 2)
        assert len(candidates) == 2
        with pytest.raises(ValueError):
            algorithm.tell(candidates + candidates, [1.0, 2.0, 3.0, 4.0])

    def test_mismatched_tell_lengths_raise(self):
        algorithm = get_algorithm("random")
        algorithm.setup(make_space(2))
        candidates = algorithm.ask(np.random.default_rng(0), 1)
        with pytest.raises(ValueError):
            algorithm.tell(candidates, [1.0, 2.0])

    def test_population_algorithm_drains_generation_in_chunks(self):
        """A CMA-ES generation surfaces whole, chunked to the ask width."""
        space = make_space(3)
        algorithm = CMAES(population_size=8)
        algorithm.setup(space)
        rng = np.random.default_rng(1)
        first = algorithm.ask(rng, 3)
        assert len(first) == 3
        rest = algorithm.ask(rng, 100)
        assert len(rest) == 5  # the remainder of the generation, nothing more
        # No further candidates until the outstanding generation is told.
        assert algorithm.ask(rng, 1) == []
        assert not algorithm.done()
        algorithm.tell(first + rest, [float(i) for i in range(8)])
        assert len(algorithm.ask(rng, 1)) == 1

    def test_chunked_tells_complete_a_generation(self):
        space = make_space(2)
        algorithm = DifferentialEvolution(population_size=6)
        algorithm.setup(space)
        rng = np.random.default_rng(3)
        population = algorithm.ask(rng, 6)
        assert len(population) == 6
        for candidate in population:  # one tell per candidate
            algorithm.tell([candidate], [float(np.sum(candidate))])
        trial = algorithm.ask(rng, 1)
        assert len(trial) == 1  # the generation observed, evolution started

    def test_hand_rolled_driver_matches_calibrator(self):
        """The documented manual ask/tell loop reproduces Calibrator.run()."""
        space = make_space(2)
        objective = quadratic_objective(space)
        reference = Calibrator(
            space, objective, algorithm="annealing", budget=EvaluationBudget(40), seed=5
        ).run()

        algorithm = get_algorithm("annealing")
        algorithm.setup(space)
        rng = np.random.default_rng(5)
        evaluations = []
        while len(evaluations) < 40 and not algorithm.done():
            for candidate in algorithm.ask(rng, 1):
                value = objective(space.from_unit_array(space.clip_unit(candidate)))
                algorithm.tell([candidate], [value])
                evaluations.append(value)
        assert evaluations == [e.value for e in reference.history]


class TestRegistryKwargs:
    def test_get_algorithm_forwards_constructor_options(self):
        assert get_algorithm("cmaes", population_size=8).population_size == 8
        assert get_algorithm("de", population_size=6, synchronous=True).synchronous is True
        assert get_algorithm("lhs", batch_size=4).batch_size == 4

    def test_gddyn_alias_accepts_options_too(self):
        algorithm = get_algorithm("gddyn", epsilon=0.5)
        assert algorithm.dynamic is True
        assert algorithm.epsilon == 0.5

    def test_options_on_an_instance_are_rejected(self):
        instance = get_algorithm("random")
        with pytest.raises(ValueError):
            get_algorithm(instance, max_iterations=3)

    def test_invalid_option_values_still_validate(self):
        with pytest.raises(ValueError):
            get_algorithm("de", population_size=2)

    def test_calibrator_forwards_algorithm_options(self):
        space = make_space(2)
        calibrator = Calibrator(
            space,
            quadratic_objective(space),
            algorithm="cmaes",
            algorithm_options={"population_size": 6},
            budget=EvaluationBudget(12),
        )
        assert calibrator.algorithm.population_size == 6
        assert calibrator.run().evaluations == 12


class TestLegacyRunOverride:
    def test_legacy_algorithm_still_works_through_calibrator(self):
        class Legacy(CalibrationAlgorithm):
            name = "legacy-fixed-point"

            def run(self, objective, space, rng):
                while True:
                    objective.evaluate_unit(np.full(space.dimension, 0.5))
                    objective.evaluate_unit(space.sample_unit(rng))

        legacy = Legacy()
        assert not legacy.is_ask_tell
        space = make_space(2)
        result = Calibrator(
            space, quadratic_objective(space), algorithm=legacy,
            budget=EvaluationBudget(9), seed=0,
        ).run()
        assert result.evaluations == 9
