"""Checkpoint/resume determinism for the asynchronous driver.

Extends the seed-trajectory parity harness of
``test_checkpoint_resume.py`` to :class:`AsyncCalibrator`: interrupt a
run with candidates still in flight (emulated, as in the serial harness,
by exhausting a smaller budget so the snapshot is taken with the pending
ledger populated along the way), resume from the JSON-round-tripped
snapshot in a fresh driver, and require the resumed trajectory to match
an uninterrupted run.  The in-flight ledger travels inside the
algorithm's ``state_dict`` (asked-but-untold candidates are re-dispatched
on resume), and the snapshot format is byte-compatible with the serial
calibrator's, so the cross-driver case is asserted too.
"""

import json

import numpy as np
import pytest

from repro.core import (
    AsyncCalibrator,
    Calibrator,
    EvaluationBudget,
    Parameter,
    ParameterSpace,
)

TOTAL = 60
CUT = 23  # mid-generation for the population algorithms
SEED = 11


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def objective_for(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    return objective


def trajectory(result):
    return [(e.unit, e.value, e.cached) for e in result.history]


def point_multiset(result):
    return sorted((e.unit, e.value) for e in result.history)


def async_calibrator(space, algorithm, budget, ordered):
    # "serial" mode evaluates inline (no pool startup) while keeping the
    # speculative-ask machinery and the pending ledger exercised.
    return AsyncCalibrator(
        space, objective_for(space), algorithm=algorithm,
        workers=3, mode="serial", budget=EvaluationBudget(budget),
        seed=SEED, ordered_tells=ordered,
    )


def cut_snapshot(space, algorithm, ordered):
    """The snapshot an interrupted run left behind at CUT evaluations."""
    snapshots = []
    async_calibrator(space, algorithm, CUT, ordered).run(
        checkpoint_every=CUT, on_checkpoint=snapshots.append
    )
    assert snapshots, f"{algorithm}: no checkpoint was emitted"
    snapshot = json.loads(json.dumps(snapshots[-1]))  # fresh-process emulation
    assert 0 < len(snapshot["history"]) <= CUT
    return snapshot


class TestAsyncResumeDeterminism:
    @pytest.mark.parametrize("algorithm", ["random", "cmaes", "nelder-mead"])
    def test_ordered_resume_is_byte_identical(self, algorithm):
        """With the ordered adapter the resumed asynchronous trajectory
        matches both the uninterrupted asynchronous run and the plain
        serial driver, byte for byte."""
        space = make_space()
        uninterrupted = async_calibrator(space, algorithm, TOTAL, ordered=True).run()
        serial = Calibrator(
            space, objective_for(space), algorithm=algorithm,
            budget=EvaluationBudget(TOTAL), seed=SEED,
        ).run()
        assert trajectory(uninterrupted) == trajectory(serial)

        snapshot = cut_snapshot(space, algorithm, ordered=True)
        resumed = async_calibrator(space, algorithm, TOTAL, ordered=True).run(
            resume=snapshot
        )
        assert trajectory(resumed) == trajectory(uninterrupted)
        assert resumed.best_value == uninterrupted.best_value
        assert resumed.best_values == uninterrupted.best_values

    @pytest.mark.parametrize("algorithm", ["random", "lhs"])
    def test_native_resume_visits_the_same_points(self, algorithm):
        """Async-native tells land in completion order, so the resumed
        run must reproduce the uninterrupted point multiset and best —
        the record *order* is not part of the native contract."""
        space = make_space()
        uninterrupted = async_calibrator(space, algorithm, TOTAL, ordered=False).run()
        snapshot = cut_snapshot(space, algorithm, ordered=False)
        resumed = async_calibrator(space, algorithm, TOTAL, ordered=False).run(
            resume=snapshot
        )
        assert point_multiset(resumed) == point_multiset(uninterrupted)
        assert resumed.best_value == uninterrupted.best_value
        assert resumed.evaluations == uninterrupted.evaluations

    def test_async_snapshot_resumes_in_the_serial_driver(self):
        """The snapshot format is the serial calibrator's: a distributed
        job interrupted mid-flight can be finished by a plain Calibrator."""
        space = make_space()
        serial = Calibrator(
            space, objective_for(space), algorithm="cmaes",
            budget=EvaluationBudget(TOTAL), seed=SEED,
        ).run()
        snapshot = cut_snapshot(space, "cmaes", ordered=True)
        resumed = Calibrator(
            space, objective_for(space), algorithm="cmaes",
            budget=EvaluationBudget(TOTAL), seed=SEED,
        ).run(resume=snapshot)
        assert trajectory(resumed) == trajectory(serial)

    def test_resume_restores_budget_accounting(self):
        """A resumed asynchronous run performs only the missing work."""
        space = make_space(2)
        calls = {"n": 0}

        def counting_objective(values):
            calls["n"] += 1
            unit = space.to_unit_array(values)
            return float(np.sum((unit - 0.37) ** 2))

        def driver(budget):
            return AsyncCalibrator(
                space, counting_objective, algorithm="lhs",
                workers=3, mode="serial", budget=EvaluationBudget(budget),
                seed=3, ordered_tells=True,
            )

        snapshots = []
        driver(20).run(checkpoint_every=20, on_checkpoint=snapshots.append)
        assert calls["n"] == 20
        calls["n"] = 0
        resumed = driver(50).run(resume=json.loads(json.dumps(snapshots[-1])))
        assert calls["n"] == 30  # not 50: the first 20 came from the snapshot
        assert resumed.evaluations == 50

    def test_checkpoint_before_run_is_rejected(self):
        space = make_space(2)
        driver = async_calibrator(space, "random", 10, ordered=True)
        with pytest.raises(RuntimeError):
            driver.checkpoint()

    def test_resume_with_wrong_algorithm_is_rejected(self):
        space = make_space(2)
        snapshot = cut_snapshot(space, "random", ordered=True)
        other = async_calibrator(space, "lhs", TOTAL, ordered=True)
        with pytest.raises(ValueError):
            other.run(resume=snapshot)
