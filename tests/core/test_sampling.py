"""Experimental-design samplers (repro.core.sampling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Parameter, ParameterSpace
from repro.core.sampling import (
    SAMPLERS,
    design_to_values,
    full_factorial_design,
    get_sampler,
    halton_design,
    latin_hypercube_design,
    sobol_design,
    star_design,
    uniform_design,
)


class TestRegistry:
    def test_all_samplers_registered(self):
        assert set(SAMPLERS) == {"uniform", "lhs", "sobol", "halton"}

    def test_get_sampler_is_case_insensitive(self):
        assert get_sampler("LHS") is latin_hypercube_design

    def test_get_sampler_unknown_raises(self):
        with pytest.raises(KeyError):
            get_sampler("dragonfly")


class TestRandomDesigns:
    @pytest.mark.parametrize("sampler", [uniform_design, latin_hypercube_design,
                                         sobol_design, halton_design])
    def test_shape_and_bounds(self, sampler):
        rng = np.random.default_rng(0)
        design = sampler(4, 33, rng)
        assert design.shape == (33, 4)
        assert np.all(design >= 0.0) and np.all(design <= 1.0)

    @pytest.mark.parametrize("sampler", [uniform_design, latin_hypercube_design,
                                         sobol_design, halton_design])
    def test_invalid_arguments(self, sampler):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sampler(0, 10, rng)
        with pytest.raises(ValueError):
            sampler(2, 0, rng)

    def test_lhs_stratification(self):
        """A Latin hypercube with n points must place exactly one point in
        each of the n equal-width strata of every dimension."""
        rng = np.random.default_rng(42)
        n = 16
        design = latin_hypercube_design(3, n, rng)
        for dim in range(3):
            strata = np.floor(design[:, dim] * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert sorted(strata) == list(range(n))

    def test_sobol_better_spread_than_worst_case(self):
        """The scrambled Sobol design must not collapse points together:
        its minimum pairwise distance should exceed a loose threshold."""
        rng = np.random.default_rng(7)
        design = sobol_design(2, 32, rng)
        distances = [
            np.linalg.norm(design[i] - design[j])
            for i in range(len(design))
            for j in range(i + 1, len(design))
        ]
        assert min(distances) > 1e-3


class TestDeterministicDesigns:
    def test_full_factorial_counts_and_corners(self):
        design = full_factorial_design(3, 3)
        assert design.shape == (27, 3)
        corners = {tuple(row) for row in design if set(row) <= {0.0, 1.0}}
        assert len(corners) == 8

    def test_full_factorial_needs_two_levels(self):
        with pytest.raises(ValueError):
            full_factorial_design(2, 1)

    def test_star_design_structure(self):
        center = np.array([0.5, 0.9])
        design = star_design(center, 0.2)
        assert design.shape == (5, 2)
        assert np.allclose(design[0], center)
        # One coordinate moved per non-center point, clipped to the box.
        for point in design[1:]:
            moved = np.abs(point - center) > 1e-12
            assert moved.sum() == 1
            assert np.all(point <= 1.0) and np.all(point >= 0.0)

    def test_star_design_validation(self):
        with pytest.raises(ValueError):
            star_design(np.array([[0.5, 0.5]]), 0.1)
        with pytest.raises(ValueError):
            star_design(np.array([0.5]), 0.0)


class TestDesignToValues:
    def test_roundtrip_through_parameter_space(self):
        space = ParameterSpace([Parameter("a", 2**10, 2**20), Parameter("b", 1.0, 100.0, scale="linear")])
        rng = np.random.default_rng(3)
        design = uniform_design(2, 5, rng)
        values = design_to_values(space, design)
        assert len(values) == 5
        for row, mapping in zip(design, values):
            assert set(mapping) == {"a", "b"}
            back = space.to_unit_array(mapping)
            assert np.allclose(back, row, atol=1e-9)


class TestHypothesisProperties:
    @given(dimension=st.integers(1, 5), n=st.integers(2, 40), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_lhs_always_stratified(self, dimension, n, seed):
        design = latin_hypercube_design(dimension, n, np.random.default_rng(seed))
        assert design.shape == (n, dimension)
        for dim in range(dimension):
            strata = np.clip(np.floor(design[:, dim] * n).astype(int), 0, n - 1)
            assert sorted(strata) == list(range(n))

    @given(levels=st.integers(2, 5), dimension=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_factorial_size(self, levels, dimension):
        design = full_factorial_design(dimension, levels)
        assert design.shape == (levels**dimension, dimension)
        # Every row is unique.
        assert len({tuple(r) for r in design}) == len(design)
