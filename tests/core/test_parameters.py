"""Parameters and parameter spaces (log2 representation, unit transforms)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import Parameter, ParameterSpace


class TestParameter:
    def test_log2_endpoints(self):
        p = Parameter("bw", 2.0**20, 2.0**36)
        assert p.from_unit(0.0) == pytest.approx(2.0**20)
        assert p.from_unit(1.0) == pytest.approx(2.0**36)
        assert p.to_unit(2.0**28) == pytest.approx(0.5)

    def test_log2_midpoint_is_geometric_mean(self):
        p = Parameter("bw", 1e3, 1e9)
        assert p.from_unit(0.5) == pytest.approx(math.sqrt(1e3 * 1e9), rel=1e-9)

    def test_linear_midpoint_is_arithmetic_mean(self):
        p = Parameter("x", 10.0, 30.0, scale="linear")
        assert p.from_unit(0.5) == pytest.approx(20.0)

    def test_clipping(self):
        p = Parameter("x", 1.0, 10.0)
        assert p.clip(0.1) == 1.0
        assert p.clip(100.0) == 10.0
        assert p.from_unit(-0.5) == pytest.approx(1.0)
        assert p.from_unit(1.5) == pytest.approx(10.0)

    def test_integer_rounding(self):
        p = Parameter("n", 1.0, 64.0, integer=True)
        value = p.from_unit(0.37)
        assert value == round(value)

    def test_grid(self):
        p = Parameter("x", 2.0**0, 2.0**4)
        assert p.grid(1) == [pytest.approx(4.0)]
        grid = p.grid(5)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(16.0)
        assert grid[2] == pytest.approx(4.0)
        with pytest.raises(ValueError):
            p.grid(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Parameter("x", 10.0, 1.0)
        with pytest.raises(ValueError):
            Parameter("x", -1.0, 1.0)  # log2 scale needs positive bounds
        with pytest.raises(ValueError):
            Parameter("x", 1.0, 2.0, scale="cubic")
        Parameter("x", -1.0, 1.0, scale="linear")  # fine on a linear scale

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=1e-3, max_value=1e12),
        st.floats(min_value=1.5, max_value=1e6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_unit_roundtrip_log2(self, low, factor, x):
        p = Parameter("x", low, low * factor)
        value = p.from_unit(x)
        assert low <= value <= low * factor * (1 + 1e-9)
        assert p.to_unit(value) == pytest.approx(x, abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=1e-3, max_value=1e6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_unit_roundtrip_linear(self, low, width, x):
        p = Parameter("x", low, low + width, scale="linear")
        value = p.from_unit(x)
        assert p.to_unit(value) == pytest.approx(x, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    def test_from_unit_is_monotonic(self, x1, x2):
        p = Parameter("x", 1.0, 1e6)
        lo, hi = sorted((x1, x2))
        assert p.from_unit(lo) <= p.from_unit(hi) * (1 + 1e-12)


class TestParameterSpace:
    def build(self):
        return ParameterSpace(
            [
                Parameter("a", 2.0**10, 2.0**20),
                Parameter("b", 1.0, 100.0, scale="linear"),
                Parameter("c", 2.0**20, 2.0**36),
            ]
        )

    def test_basic_properties(self):
        space = self.build()
        assert space.dimension == 3
        assert space.names == ["a", "b", "c"]
        assert "a" in space and "z" not in space
        assert len(list(iter(space))) == 3
        assert space["b"].scale == "linear"

    def test_duplicate_and_empty_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([])
        with pytest.raises(ValueError):
            ParameterSpace([Parameter("a", 1, 2), Parameter("a", 1, 2)])

    def test_array_dict_roundtrip(self):
        space = self.build()
        values = {"a": 2.0**15, "b": 42.0, "c": 2.0**30}
        unit = space.to_unit_array(values)
        back = space.from_unit_array(unit)
        for name in space.names:
            assert back[name] == pytest.approx(values[name], rel=1e-9)

    def test_from_unit_array_shape_check(self):
        space = self.build()
        with pytest.raises(ValueError):
            space.from_unit_array([0.5, 0.5])

    def test_sampling_in_bounds(self):
        space = self.build()
        rng = np.random.default_rng(0)
        for _ in range(20):
            values = space.sample(rng)
            for parameter in space:
                assert parameter.low <= values[parameter.name] <= parameter.high

    def test_center_and_subset(self):
        space = self.build()
        center = space.center()
        assert center["b"] == pytest.approx(50.5)
        subset = space.subset(["c", "a"])
        assert subset.names == ["c", "a"]
        with pytest.raises(KeyError):
            space.subset(["missing"])

    def test_clip_unit_and_values(self):
        space = self.build()
        clipped = space.clip_unit([-1.0, 0.5, 2.0])
        assert clipped.tolist() == [0.0, 0.5, 1.0]
        values = space.clip_values({"a": 0.0, "b": 1e9, "c": 2.0**25})
        assert values["a"] == 2.0**10
        assert values["b"] == 100.0

    def test_describe_mentions_every_parameter(self):
        text = self.build().describe()
        for name in ("a", "b", "c"):
            assert name in text
