"""Accuracy metrics: exact values and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    get_metric,
    max_relative_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_relative_error,
    root_mean_squared_error,
)


REFERENCE = {("n1", 0.0): 100.0, ("n1", 1.0): 50.0, ("n2", 0.0): 200.0}


class TestExactValues:
    def test_identical_dicts_have_zero_error(self):
        for metric in (mean_relative_error, mean_absolute_error, max_relative_error,
                       root_mean_squared_error):
            assert metric(REFERENCE, dict(REFERENCE)) == pytest.approx(0.0)

    def test_mre_known_value(self):
        candidate = {("n1", 0.0): 110.0, ("n1", 1.0): 40.0, ("n2", 0.0): 200.0}
        # relative errors: 10%, 20%, 0% -> mean 10%
        assert mean_relative_error(REFERENCE, candidate) == pytest.approx(10.0)

    def test_mae_known_value(self):
        candidate = {("n1", 0.0): 110.0, ("n1", 1.0): 40.0, ("n2", 0.0): 230.0}
        assert mean_absolute_error(REFERENCE, candidate) == pytest.approx((10 + 10 + 30) / 3)

    def test_max_relative_error_known_value(self):
        candidate = {("n1", 0.0): 150.0, ("n1", 1.0): 50.0, ("n2", 0.0): 210.0}
        assert max_relative_error(REFERENCE, candidate) == pytest.approx(50.0)

    def test_rmse_known_value(self):
        candidate = {k: v + 3.0 for k, v in REFERENCE.items()}
        assert root_mean_squared_error(REFERENCE, candidate) == pytest.approx(3.0)

    def test_mape_is_alias_of_mre(self):
        candidate = {k: v * 1.25 for k, v in REFERENCE.items()}
        assert mean_absolute_percentage_error(REFERENCE, candidate) == pytest.approx(
            mean_relative_error(REFERENCE, candidate)
        )

    def test_zero_reference_entries_are_skipped(self):
        reference = {"a": 0.0, "b": 100.0}
        candidate = {"a": 50.0, "b": 150.0}
        assert mean_relative_error(reference, candidate) == pytest.approx(50.0)

    def test_all_zero_reference_raises(self):
        with pytest.raises(ValueError):
            mean_relative_error({"a": 0.0}, {"a": 1.0})
        with pytest.raises(ValueError):
            max_relative_error({"a": 0.0}, {"a": 1.0})

    def test_missing_candidate_key_raises(self):
        with pytest.raises(KeyError):
            mean_relative_error(REFERENCE, {("n1", 0.0): 100.0})

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            mean_relative_error({}, {})

    def test_registry_lookup(self):
        assert get_metric("MRE") is mean_relative_error
        assert get_metric("mae") is mean_absolute_error
        with pytest.raises(KeyError):
            get_metric("nope")


metric_dicts = st.dictionaries(
    keys=st.text(min_size=1, max_size=5),
    values=st.floats(min_value=0.1, max_value=1e6),
    min_size=1,
    max_size=12,
)


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(metric_dicts, st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_candidate_gives_expected_mre(self, reference, factor):
        candidate = {k: v * factor for k, v in reference.items()}
        expected = abs(factor - 1.0) * 100.0
        assert mean_relative_error(reference, candidate) == pytest.approx(expected, rel=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(metric_dicts)
    def test_metrics_are_nonnegative_and_zero_on_identity(self, reference):
        candidate = dict(reference)
        assert mean_relative_error(reference, candidate) == pytest.approx(0.0)
        assert mean_absolute_error(reference, candidate) == pytest.approx(0.0)
        assert root_mean_squared_error(reference, candidate) == pytest.approx(0.0)

    @settings(max_examples=60, deadline=None)
    @given(metric_dicts, metric_dicts)
    def test_nonnegative_for_arbitrary_candidates(self, reference, other):
        candidate = {k: other.get(k, 1.0) for k in reference}
        assert mean_relative_error(reference, candidate) >= 0.0
        assert mean_absolute_error(reference, candidate) >= 0.0
        assert max_relative_error(reference, candidate) >= mean_relative_error(
            reference, candidate
        ) - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(metric_dicts)
    def test_mae_bounded_by_max_deviation(self, reference):
        candidate = {k: v * 1.5 for k, v in reference.items()}
        max_dev = max(abs(candidate[k] - v) for k, v in reference.items())
        assert mean_absolute_error(reference, candidate) <= max_dev + 1e-9
