"""BatchCalibrator: k-wide asks, budget trimming, cache consultation.

Thread/serial execution modes keep the tests closure-friendly (process
pools need picklable objectives and are exercised by the benchmark and
the parallel-scaling tests instead).
"""

import threading

import numpy as np
import pytest

from repro.core import (
    BatchCalibrator,
    Calibrator,
    CombinedBudget,
    DictCache,
    EvaluationBudget,
    ParallelCalibrator,
    Parameter,
    ParameterSpace,
    TimeBudget,
    remaining_evaluations,
)
from repro.core.algorithms import CalibrationAlgorithm


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def quadratic(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    return objective


class TestRemainingEvaluations:
    def test_plain_budgets(self):
        assert remaining_evaluations(EvaluationBudget(10), 4) == 6
        assert remaining_evaluations(EvaluationBudget(10), 12) == 0
        assert remaining_evaluations(TimeBudget(5.0), 4) is None

    def test_combined_budget_recurses(self):
        combined = CombinedBudget([TimeBudget(100.0), EvaluationBudget(7)])
        assert remaining_evaluations(combined, 3) == 4
        nested = CombinedBudget([combined, EvaluationBudget(5)])
        assert remaining_evaluations(nested, 3) == 2
        assert remaining_evaluations(CombinedBudget([TimeBudget(1.0)]), 3) is None


class TestFinalBatchTrimming:
    def test_parallel_calibrator_combined_budget_does_not_overshoot(self):
        """The historical bug: a CombinedBudget wrapping an EvaluationBudget
        escaped the isinstance trim and overshot by up to batch_size - 1."""
        space = make_space(2)
        budget = CombinedBudget([TimeBudget(3600.0), EvaluationBudget(10)])
        calibrator = ParallelCalibrator(
            space, quadratic(space), sampler="lhs", workers=1, mode="serial",
            batch_size=4, budget=budget, seed=0,
        )
        result = calibrator.run()
        assert result.evaluations == 10  # not 12

    def test_batch_calibrator_combined_budget_does_not_overshoot(self):
        space = make_space(2)
        budget = CombinedBudget([TimeBudget(3600.0), EvaluationBudget(10)])
        result = BatchCalibrator(
            space, quadratic(space), algorithm="random", workers=1, mode="serial",
            batch_size=4, budget=budget, seed=0,
        ).run()
        assert result.evaluations == 10


class TestBatchedDriving:
    @pytest.mark.parametrize("name", ["lhs", "sobol", "random", "grid", "cmaes"])
    def test_batched_history_matches_serial_for_generation_algorithms(self, name):
        """Algorithms that generate whole batches upfront visit exactly the
        serial points, in the serial order, under the batched driver."""
        space = make_space(3)
        serial = Calibrator(
            space, quadratic(space), algorithm=name,
            budget=EvaluationBudget(40), seed=7,
        ).run()
        batched = BatchCalibrator(
            space, quadratic(space), algorithm=name, workers=4, mode="thread",
            budget=EvaluationBudget(40), seed=7,
        ).run()
        assert [e.unit for e in batched.history] == [e.unit for e in serial.history]
        assert [e.value for e in batched.history] == [e.value for e in serial.history]

    def test_every_builtin_algorithm_runs_batched(self):
        from repro.core import ALGORITHMS

        space = make_space(2)
        for name in sorted(ALGORITHMS):
            result = BatchCalibrator(
                space, quadratic(space), algorithm=name, workers=3, mode="serial",
                budget=EvaluationBudget(25), seed=2,
            ).run()
            assert result.evaluations == 25, name

    def test_synchronous_de_fills_worker_batches(self):
        """synchronous=True asks whole generations after the init batch."""
        space = make_space(2)
        result = BatchCalibrator(
            space, quadratic(space), algorithm="de", workers=4, mode="thread",
            algorithm_options={"population_size": 8, "synchronous": True},
            budget=EvaluationBudget(32), seed=4,
        ).run()
        assert result.evaluations == 32
        assert result.best_value < 25.0

    def test_thread_mode_actually_runs_concurrently(self):
        space = make_space(2)
        active = {"now": 0, "max": 0}
        lock = threading.Lock()
        barrier_like = threading.Event()

        def objective(values):
            with lock:
                active["now"] += 1
                active["max"] = max(active["max"], active["now"])
                if active["now"] >= 2:
                    barrier_like.set()
            barrier_like.wait(timeout=5.0)
            with lock:
                active["now"] -= 1
            unit = space.to_unit_array(values)
            return float(np.sum(unit))

        BatchCalibrator(
            space, objective, algorithm="lhs", workers=4, mode="thread",
            algorithm_options={"batch_size": 8}, budget=EvaluationBudget(8), seed=0,
        ).run()
        assert active["max"] >= 2

    def test_within_batch_duplicates_dispatch_once(self):
        """Two candidates of one generation landing on the same point cost
        one dispatch and one budget unit — the serial cache semantics."""

        class Duplicating(CalibrationAlgorithm):
            name = "duplicating"

            def _setup(self):
                self._gen = 0

            def _generate(self, rng, n):
                if self._gen >= 100:
                    return None
                self._gen += 1
                point = np.full(2, 0.01 * self._gen)
                return [point, point.copy(), np.full(2, 0.5 + 0.001 * self._gen)]

        space = make_space(2)
        calls = {"n": 0}

        def counting(values):
            calls["n"] += 1
            unit = space.to_unit_array(values)
            return float(np.sum(unit))

        told = []
        algorithm = Duplicating()
        original_tell = algorithm.tell
        algorithm.tell = lambda cands, vals: (told.extend(vals), original_tell(cands, vals))
        result = BatchCalibrator(
            space, counting, algorithm=algorithm, workers=1, mode="serial",
            batch_size=8, budget=EvaluationBudget(6), seed=0,
        ).run()
        # 3 generations of 3 candidates, 2 unique each: 6 dispatches total,
        # and every candidate (duplicates included) was told a value.
        assert calls["n"] == 6
        assert result.evaluations == 6
        assert len(told) == 9
        class Legacy(CalibrationAlgorithm):
            name = "legacy"

            def run(self, objective, space, rng):  # pragma: no cover - stub
                pass

        space = make_space(2)
        with pytest.raises(ValueError):
            BatchCalibrator(space, quadratic(space), algorithm=Legacy())


class TestCacheConsultation:
    def test_warm_cache_answers_without_dispatching(self):
        """A shared cache warmed by one run answers the identical rerun
        without a single new dispatch (count_cache_hits keeps the budget
        accounting of the replayed run)."""
        space = make_space(2)
        calls = {"n": 0}

        def counting(values):
            calls["n"] += 1
            unit = space.to_unit_array(values)
            return float(np.sum((unit - 0.37) ** 2))

        shared = DictCache()
        cold = BatchCalibrator(
            space, counting, algorithm="lhs", workers=2, mode="thread",
            budget=EvaluationBudget(20), seed=5, cache=shared,
        ).run()
        assert calls["n"] == 20
        warm_driver = BatchCalibrator(
            space, counting, algorithm="lhs", workers=2, mode="thread",
            budget=EvaluationBudget(20), seed=5, cache=shared,
            record_cache_hits=True, count_cache_hits=True,
        )
        warm = warm_driver.run()
        assert calls["n"] == 20  # nothing new was simulated
        assert warm_driver.cache_hits == 20
        assert warm.evaluations == 0
        assert warm.best_value == cold.best_value
        assert [e.unit for e in warm.history] == [e.unit for e in cold.history]
        assert all(e.cached for e in warm.history)

    def test_warm_run_stops_at_the_exact_budget_mid_batch(self):
        """Counted cache hits must respect the evaluation cap candidate by
        candidate: a store warmer than the budget, with the budget not
        aligned to batch boundaries, stops at exactly the serial total."""
        space = make_space(2)
        shared = DictCache()
        BatchCalibrator(
            space, quadratic(space), algorithm="lhs", workers=1, mode="serial",
            budget=EvaluationBudget(32), seed=9, cache=shared,
        ).run()
        warm = BatchCalibrator(
            space, quadratic(space), algorithm="lhs", workers=1, mode="serial",
            batch_size=4, budget=EvaluationBudget(10), seed=9, cache=shared,
            record_cache_hits=True, count_cache_hits=True,
        ).run()
        assert len(warm.history) == 10  # not 12
        serial = Calibrator(
            space, quadratic(space), algorithm="lhs",
            budget=EvaluationBudget(10), seed=9, cache=shared,
            record_cache_hits=True, count_cache_hits=True,
        ).run()
        assert [e.unit for e in warm.history] == [e.unit for e in serial.history]

    def test_integer_parameters_share_one_cache_entry_and_charge(self):
        """Keys are built from the round-tripped unit (Objective's
        canonicalization): two asked units collapsing onto one integer
        point cost one dispatch and one budget unit, as in serial."""

        class TwoUnits(CalibrationAlgorithm):
            name = "two-units"

            def _setup(self):
                self._gen = 0

            def _generate(self, rng, n):
                self._gen += 1
                offset = 0.1 * self._gen
                # Both land on the same integer after from_unit_array.
                return [np.array([offset + 0.0001]), np.array([offset + 0.0002])]

        space = ParameterSpace([Parameter("n", 2, 64, scale="linear", integer=True)])
        calls = {"n": 0}

        def counting(values):
            calls["n"] += 1
            return float(values["n"])

        result = BatchCalibrator(
            space, counting, algorithm=TwoUnits(), workers=1, mode="serial",
            batch_size=4, budget=EvaluationBudget(3), seed=0,
        ).run()
        assert calls["n"] == 3
        assert result.evaluations == 3

    def test_dedupe_cache_is_accepted_and_shares_in_flight_work(self):
        """The claim/lease protocol replaced the blocking hold-and-wait
        dedupe: a single-flight store cache now works with batch drivers,
        and two concurrent drivers on the same scenario compute every
        point exactly once between them (grid visits the same lattice
        regardless of seed)."""
        import threading

        from repro.service import InMemoryStore, StoreBackedCache

        space = make_space(3)
        store = InMemoryStore()
        lock = threading.Lock()
        calls = []

        def slow(values):
            with lock:
                calls.append(dict(values))
            import time as _time

            _time.sleep(0.003)
            unit = space.to_unit_array(values)
            return float(np.sum((unit - 0.37) ** 2))

        def run(seed):
            return BatchCalibrator(
                space, slow, algorithm="grid", workers=2, mode="thread",
                budget=EvaluationBudget(27), seed=seed,
                cache=StoreBackedCache(store, "fp", dedupe_in_flight=True, lease_ttl=30.0),
                record_cache_hits=True, count_cache_hits=True,
            ).run()

        results = [None, None]
        threads = [
            threading.Thread(target=lambda i=i: results.__setitem__(i, run(i + 1)))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 27  # the 3^3 lattice, computed once across both
        assert results[0].best_value == results[1].best_value
        assert store.lease_count() == 0  # every claim was finished

    def test_store_backed_cache_without_dedupe_shares_work(self):
        """The supported store binding (dedupe_in_flight=False) shares
        evaluations between a batched run and later runs on the store."""
        from repro.service import InMemoryStore, StoreBackedCache

        space = make_space(2)
        store = InMemoryStore()
        calls = {"n": 0}

        def counting(values):
            calls["n"] += 1
            unit = space.to_unit_array(values)
            return float(np.sum((unit - 0.37) ** 2))

        def run_once():
            return BatchCalibrator(
                space, counting, algorithm="lhs", workers=1, mode="serial",
                budget=EvaluationBudget(12), seed=6,
                cache=StoreBackedCache(store, "fp-shared", dedupe_in_flight=False),
                record_cache_hits=True, count_cache_hits=True,
            ).run()

        cold, warm = run_once(), run_once()
        assert calls["n"] == 12  # the second run re-paid for nothing
        assert warm.best_value == cold.best_value

    def test_cold_in_memory_cache_matches_no_cache(self):
        space = make_space(2)
        with_cache = BatchCalibrator(
            space, quadratic(space), algorithm="random", workers=2, mode="serial",
            budget=EvaluationBudget(15), seed=1, cache=True,
        ).run()
        without = BatchCalibrator(
            space, quadratic(space), algorithm="random", workers=2, mode="serial",
            budget=EvaluationBudget(15), seed=1, cache=False,
        ).run()
        assert [e.value for e in with_cache.history] == [e.value for e in without.history]
