"""Sensitivity analysis (OAT / Morris) and the accuracy-speed trade-off helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Parameter,
    ParameterSpace,
    TradeoffPoint,
    dominated_fraction,
    knee_point,
    morris_elementary_effects,
    one_at_a_time,
    pareto_front,
    rank_parameters,
)


def make_space():
    return ParameterSpace(
        [
            Parameter("heavy", 2**10, 2**30),
            Parameter("light", 2**10, 2**30),
            Parameter("flat", 2**10, 2**30),
        ]
    )


def anisotropic_objective(space):
    """Strong dependence on 'heavy', weak on 'light', none on 'flat'."""

    def objective(values):
        unit = space.to_unit_array(values)
        return 100.0 * (unit[0] - 0.5) ** 2 + 1.0 * (unit[1] - 0.5) ** 2

    return objective


class TestOneAtATime:
    def test_ranks_parameters_by_influence(self):
        space = make_space()
        result = one_at_a_time(anisotropic_objective(space), space, levels=5)
        assert result.ranking() == ["heavy", "light", "flat"]
        assert result.indices["flat"] == pytest.approx(0.0, abs=1e-12)
        assert result.evaluations == 3 * 5

    def test_normalized_peaks_at_one(self):
        space = make_space()
        result = one_at_a_time(anisotropic_objective(space), space, levels=5)
        normalized = result.normalized()
        assert normalized["heavy"] == pytest.approx(1.0)
        assert 0.0 <= normalized["light"] < 0.1

    def test_span_restricts_the_sweep(self):
        space = make_space()
        seen = []

        def recording(values):
            seen.append(space.to_unit_array(values)[0])
            return 0.0

        base = space.from_unit_array([0.5, 0.5, 0.5])
        one_at_a_time(recording, space, base=base, levels=5, span=0.1)
        # Coordinates probed for the first parameter stay within +/- 0.1.
        first_param_probes = seen[:5]
        assert all(0.4 - 1e-9 <= c <= 0.6 + 1e-9 for c in first_param_probes)

    def test_validation(self):
        space = make_space()
        with pytest.raises(ValueError):
            one_at_a_time(lambda v: 0.0, space, levels=2)
        with pytest.raises(ValueError):
            one_at_a_time(lambda v: 0.0, space, span=0.0)


class TestMorris:
    def test_identifies_the_flat_parameter(self):
        space = make_space()
        result = morris_elementary_effects(anisotropic_objective(space), space,
                                           trajectories=6, seed=2)
        assert result.indices["flat"] == pytest.approx(0.0, abs=1e-12)
        assert result.indices["heavy"] > result.indices["light"]
        assert result.method == "morris"

    def test_is_deterministic_for_a_seed(self):
        space = make_space()
        a = morris_elementary_effects(anisotropic_objective(space), space, trajectories=4, seed=9)
        b = morris_elementary_effects(anisotropic_objective(space), space, trajectories=4, seed=9)
        assert a.indices == b.indices

    def test_validation(self):
        space = make_space()
        with pytest.raises(ValueError):
            morris_elementary_effects(lambda v: 0.0, space, trajectories=1)
        with pytest.raises(ValueError):
            morris_elementary_effects(lambda v: 0.0, space, delta=1.5)


class TestRanking:
    def test_rank_parameters_splits_on_threshold(self):
        space = make_space()
        result = one_at_a_time(anisotropic_objective(space), space, levels=5)
        groups = rank_parameters(result, threshold=0.1)
        assert groups["influential"] == ["heavy"]
        assert set(groups["negligible"]) == {"light", "flat"}


class TestParetoFront:
    def test_front_excludes_dominated_points(self):
        points = [
            TradeoffPoint("fast-bad", 1.0, 20.0),
            TradeoffPoint("slow-good", 10.0, 2.0),
            TradeoffPoint("dominated", 12.0, 25.0),
            TradeoffPoint("balanced", 5.0, 5.0),
        ]
        front = pareto_front(points)
        labels = [p.label for p in front]
        assert "dominated" not in labels
        assert labels == ["fast-bad", "balanced", "slow-good"]

    def test_duplicate_points_survive(self):
        twin_a = TradeoffPoint("a", 1.0, 1.0)
        twin_b = TradeoffPoint("b", 1.0, 1.0)
        assert len(pareto_front([twin_a, twin_b])) == 2

    def test_knee_point_prefers_the_corner(self):
        points = [
            TradeoffPoint("extreme-time", 100.0, 1.0),
            TradeoffPoint("extreme-error", 1.0, 100.0),
            TradeoffPoint("knee", 5.0, 5.0),
        ]
        assert knee_point(points).label == "knee"

    def test_knee_point_empty_and_single(self):
        assert knee_point([]) is None
        single = TradeoffPoint("only", 1.0, 1.0)
        assert knee_point([single]) is single

    def test_dominated_fraction(self):
        points = [
            TradeoffPoint("a", 1.0, 1.0),
            TradeoffPoint("b", 2.0, 2.0),
            TradeoffPoint("c", 3.0, 3.0),
            TradeoffPoint("d", 0.5, 4.0),
        ]
        assert dominated_fraction(points) == pytest.approx(0.5)
        assert dominated_fraction([]) == 0.0

    @given(st.lists(st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_mutually_non_dominating(self, raw):
        points = [TradeoffPoint(f"p{i}", t, e) for i, (t, e) in enumerate(raw)]
        front = pareto_front(points)
        assert front  # at least one point always survives
        for a in front:
            assert not any(b.dominates(a) for b in front if b is not a)
        # Every excluded point is dominated by some front member.
        excluded = [p for p in points if p not in front]
        for p in excluded:
            assert any(f.dominates(p) for f in front)
