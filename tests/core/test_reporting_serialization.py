"""Calibration reports and JSON persistence of results."""

import numpy as np
import pytest

from repro.core import (
    Calibrator,
    EvaluationBudget,
    Parameter,
    ParameterSpace,
    calibration_report,
    convergence_sparkline,
    load_result,
    save_result,
)
from repro.core.serialization import FORMAT_VERSION, result_from_dict, result_to_dict


@pytest.fixture(scope="module")
def space():
    return ParameterSpace(
        [
            Parameter("bandwidth", 2.0**10, 2.0**30, unit="B/s"),
            Parameter("speed", 2.0**10, 2.0**30, unit="flop/s"),
        ]
    )


@pytest.fixture(scope="module")
def result(space):
    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.4) ** 2)) * 100.0

    return Calibrator(space, objective, "random", EvaluationBudget(40), seed=7).run()


class TestSerialization:
    def test_roundtrip_preserves_everything(self, result, tmp_path):
        path = save_result(result, tmp_path / "nested" / "run.json")
        loaded = load_result(path)
        assert loaded.algorithm == result.algorithm
        assert loaded.best_value == pytest.approx(result.best_value)
        assert loaded.best_values == pytest.approx(result.best_values)
        assert loaded.evaluations == result.evaluations
        assert loaded.seed == result.seed
        assert len(loaded.history) == len(result.history)
        assert loaded.history.best_so_far() == pytest.approx(result.history.best_so_far())

    def test_dict_roundtrip_without_disk(self, result):
        clone = result_from_dict(result_to_dict(result))
        assert clone.budget_description == result.budget_description
        assert [e.values for e in clone.history] == [e.values for e in result.history]

    def test_format_version_is_checked(self, result):
        payload = result_to_dict(result)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            result_from_dict(payload)


class TestReporting:
    def test_report_mentions_parameters_and_convergence(self, result, space):
        text = calibration_report(result, space, objective_name="MRE")
        assert "bandwidth" in text and "speed" in text
        assert "B/s" in text
        assert "best MRE" in text
        assert "100%" in text
        assert "sparkline" in text

    def test_report_without_a_space_uses_value_names(self, result):
        text = calibration_report(result)
        assert "bandwidth" in text

    def test_sparkline_is_bounded_and_nonempty(self, result):
        line = convergence_sparkline(result, width=30)
        assert 0 < len(line) <= 40
        # The best-so-far curve decays, so the last character must not be the
        # highest level.
        assert line[-1] != "@" or line[0] == "@"

    def test_sparkline_flat_history(self, space):
        constant = Calibrator(space, lambda values: 5.0, "random", EvaluationBudget(10), seed=1).run()
        line = convergence_sparkline(constant)
        assert set(line) == {"."}
