"""The ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_calibrate_defaults(self):
        args = build_parser().parse_args(["calibrate"])
        assert args.platform == "FCSN"
        assert args.algorithm == "random"
        assert args.metric == "mre"
        assert args.evaluations == 200

    def test_experiment_accepts_a_name(self):
        args = build_parser().parse_args(["experiment", "table3", "--scale", "tiny"])
        assert args.name == "table3"
        assert args.scale == "tiny"

    def test_invalid_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["calibrate", "--platform", "MOON"])


class TestListCommand:
    def test_lists_algorithms_and_metrics(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("random", "grid", "gdfix", "bayesian", "mre", "rmse", "SCFN"):
            assert token in out


class TestCalibrateCommand:
    def test_tiny_calibration_with_comparison(self, capsys):
        code = main([
            "calibrate", "--platform", "SCSN", "--scale", "tiny",
            "--icds", "0.0,1.0", "--algorithm", "random",
            "--evaluations", "15", "--seed", "3", "--compare",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best MRE" in out
        assert "HUMAN" in out
        assert "disk_bandwidth" in out

    def test_invalid_icds_rejected(self):
        with pytest.raises(SystemExit):
            main(["calibrate", "--icds", "zero,one", "--scale", "tiny"])


class TestSimulateCommand:
    def test_simulate_with_true_values(self, capsys):
        code = main([
            "simulate", "--platform", "FCSN", "--scale", "tiny",
            "--icds", "0.0,1.0", "--values", "true",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRE" in out
        assert "ICD  0.0" in out or "ICD 0.0" in out.replace("  ", " ")


class TestExperimentCommand:
    def test_table1_needs_no_simulation(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "114" in out  # the survey total

    def test_table2_prints_the_platform_table(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        for platform in ("SCFN", "FCFN", "SCSN", "FCSN"):
            assert platform in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestCalibrateReportAndSave:
    def test_report_and_save_options(self, capsys, tmp_path):
        out_path = tmp_path / "result.json"
        code = main([
            "calibrate", "--platform", "FCSN", "--scale", "tiny",
            "--icds", "0.0,1.0", "--algorithm", "lhs",
            "--evaluations", "12", "--seed", "2",
            "--report", "--save", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Calibration report" in out
        assert "sparkline" in out
        assert out_path.exists()

        from repro.core import load_result

        loaded = load_result(out_path)
        assert loaded.evaluations == 12
        assert loaded.algorithm == "lhs"


class TestServiceCommands:
    SUBMIT = [
        "submit", "--platform", "SCSN", "--scale", "tiny", "--icds", "0.0,1.0",
        "--algorithm", "random", "--evaluations", "8", "--seed", "3",
    ]

    def test_submit_serve_status_roundtrip(self, capsys, tmp_path):
        serve_dir = str(tmp_path / "svc")
        assert main(self.SUBMIT + ["--serve-dir", serve_dir]) == 0
        out = capsys.readouterr().out
        assert "submitted job-0001" in out

        assert main(["serve", "--serve-dir", serve_dir, "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "job-0001 done" in out

        assert main(["status", "--serve-dir", serve_dir]) == 0
        out = capsys.readouterr().out
        assert "job-0001" in out and "done" in out

    def test_second_job_hits_the_shared_store(self, capsys, tmp_path):
        serve_dir = str(tmp_path / "svc")
        # Two identical jobs, served by two separate server processes: the
        # second must answer every evaluation from the persisted store.
        assert main(self.SUBMIT + ["--serve-dir", serve_dir]) == 0
        assert main(["serve", "--serve-dir", serve_dir, "--workers", "1"]) == 0
        assert main(self.SUBMIT + ["--serve-dir", serve_dir]) == 0
        assert main(["serve", "--serve-dir", serve_dir, "--workers", "1"]) == 0
        capsys.readouterr()

        from repro.service import JobSpool

        spool = JobSpool(serve_dir)
        first, second = spool.load("job-0001"), spool.load("job-0002")
        assert first["status"] == second["status"] == "done"
        assert first["cache_hits"] == 0 and first["evaluations"] == 8
        assert second["cache_hits"] > 0 and second["evaluations"] == 0
        assert second["best_value"] == first["best_value"]

        # Results are reloadable, with per-evaluation JSONL histories.
        result = spool.read_result("job-0001")
        assert result.evaluations == 8
        from repro.core import CalibrationHistory

        history = CalibrationHistory.from_jsonl(spool.history_path("job-0002"))
        assert len(history) == 8
        assert all(e.cached for e in history)
        assert spool.default_store_path.exists()

    def test_status_on_empty_spool(self, capsys, tmp_path):
        assert main(["status", "--serve-dir", str(tmp_path / "empty")]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_status_unknown_job_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["status", "--serve-dir", str(tmp_path / "svc"), "--job", "job-9999"])

    def test_serve_recovers_jobs_stranded_in_running(self, capsys, tmp_path):
        # A server that died mid-job leaves its spool record at "running";
        # the next serve must pick it up again rather than strand it.
        serve_dir = str(tmp_path / "svc")
        assert main(self.SUBMIT + ["--serve-dir", serve_dir]) == 0

        from repro.service import JobSpool

        spool = JobSpool(serve_dir)
        spool.update("job-0001", status="running")
        assert main(["serve", "--serve-dir", serve_dir]) == 0
        capsys.readouterr()
        assert spool.load("job-0001")["status"] == "done"

    def test_duplicate_explicit_job_id_is_rejected(self, tmp_path):
        from repro.service import JobSpool

        spool = JobSpool(tmp_path / "svc")
        spool.submit({"platform": "FCSN"}, job_id="job-0001")
        with pytest.raises(ValueError, match="already exists"):
            spool.submit({"platform": "FCSN"}, job_id="job-0001")

    def test_unserveable_spec_marks_the_job_failed(self, capsys, tmp_path):
        serve_dir = str(tmp_path / "svc")
        assert main(self.SUBMIT + ["--serve-dir", serve_dir]) == 0

        from repro.service import JobSpool

        spool = JobSpool(serve_dir)
        spool.update("job-0001", scale="galaxy")  # no such scenario scale
        assert main(["serve", "--serve-dir", serve_dir]) == 0
        capsys.readouterr()
        assert spool.load("job-0001")["status"] == "failed"

    def test_help_epilog_documents_the_service(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for token in ("repro submit", "repro serve", "repro status", "evaluation store"):
            assert token in out


class TestCalibrateTelemetryOptions:
    BASE = [
        "calibrate", "--platform", "SCSN", "--scale", "tiny",
        "--icds", "0.0,1.0", "--algorithm", "random",
        "--evaluations", "8", "--seed", "3",
    ]

    def test_metrics_render_to_stdout(self, capsys):
        assert main(self.BASE + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# HELP repro_objective_evaluations_total" in out
        assert "# TYPE repro_algorithm_ask_seconds histogram" in out
        assert "repro_store_" not in out  # no store in play → no store metrics

    def test_metrics_snapshot_written_to_json(self, capsys, tmp_path):
        import json

        snap = tmp_path / "metrics.json"
        assert main(self.BASE + ["--metrics", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        data = json.loads(snap.read_text())
        names = {m["name"] for m in data["metrics"]}
        # One command, all layers: algorithm + objective instruments at
        # minimum (driver metrics appear with --workers, store with --store).
        assert "repro_algorithm_ask_seconds" in names
        assert "repro_algorithm_tell_seconds" in names
        assert "repro_objective_evaluations_total" in names

    def test_trace_reconstructs_every_evaluation(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(self.BASE + ["--trace", str(trace)]) == 0
        assert "trace written to" in capsys.readouterr().out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        (root,) = by_name["calibration"]
        evaluations = [r for r in by_name["evaluation"] if "value" in r["attrs"]]
        assert len(evaluations) == 8
        assert all(r["parent_id"] == root["span_id"] for r in evaluations)
        assert all(r["trace_id"] == root["trace_id"] for r in evaluations)
        # Each evaluation wraps its simulator spans.
        evaluation_ids = {r["span_id"] for r in by_name["evaluation"]}
        assert by_name["simulate"]
        assert all(r["parent_id"] in evaluation_ids for r in by_name["simulate"])

    def test_store_reuses_evaluations_across_runs(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert main(self.BASE + ["--store", store]) == 0
        cold = capsys.readouterr().out
        assert "8 evaluations, 0 hits this run" in cold
        assert main(self.BASE + ["--store", store]) == 0
        warm = capsys.readouterr().out
        assert "8 evaluations, 8 hits this run" in warm


class TestTopCommand:
    def test_top_over_a_drained_spool(self, capsys, tmp_path):
        serve_dir = str(tmp_path / "svc")
        assert main(TestServiceCommands.SUBMIT + ["--serve-dir", serve_dir]) == 0
        assert main(["serve", "--serve-dir", serve_dir, "--workers", "1"]) == 0
        capsys.readouterr()

        assert main(["top", "--serve-dir", serve_dir, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "-- repro top @" in out
        assert "(1 jobs)" in out and "done:1" in out
        assert "stored evaluations in" in out

    def test_top_on_empty_spool(self, capsys, tmp_path):
        assert main(["top", "--serve-dir", str(tmp_path / "empty"),
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "(0 jobs)" in out

    def test_status_appends_the_store_summary(self, capsys, tmp_path):
        serve_dir = str(tmp_path / "svc")
        assert main(TestServiceCommands.SUBMIT + ["--serve-dir", serve_dir]) == 0
        assert main(["serve", "--serve-dir", serve_dir, "--workers", "1"]) == 0
        capsys.readouterr()
        assert main(["status", "--serve-dir", serve_dir]) == 0
        out = capsys.readouterr().out
        assert "stored evaluations in" in out


class TestVerbosityFlags:
    CAL = [
        "calibrate", "--platform", "SCSN", "--scale", "tiny",
        "--icds", "0.0,1.0", "--evaluations", "4", "--seed", "1",
    ]

    def test_quiet_keeps_results_but_drops_info_logs(self, capsys, tmp_path):
        serve_dir = str(tmp_path / "svc")
        assert main(TestServiceCommands.SUBMIT + ["--serve-dir", serve_dir]) == 0
        capsys.readouterr()
        assert main(["serve", "-q", "--serve-dir", serve_dir]) == 0
        out = capsys.readouterr().out
        assert "served 1 job(s)" in out  # console() output survives -q
        assert "done: best" not in out  # event log lines are suppressed

    def test_default_serve_still_narrates_events(self, capsys, tmp_path):
        serve_dir = str(tmp_path / "svc")
        assert main(TestServiceCommands.SUBMIT + ["--serve-dir", serve_dir]) == 0
        capsys.readouterr()
        assert main(["serve", "--serve-dir", serve_dir]) == 0
        out = capsys.readouterr().out
        assert "job-0001 done" in out


class TestReportCommand:
    def test_report_from_a_results_directory(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2.txt").write_text("== table2 ==\nSCFN | disabled\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "SCFN" in out

    def test_report_written_to_a_file(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure2.txt").write_text("== figure2 ==\ncurve\n")
        output = tmp_path / "REPORT.md"
        assert main(["report", "--results-dir", str(results), "--output", str(output)]) == 0
        assert output.exists()
        assert "figure2" in output.read_text() or "Figure 2" in output.read_text()
