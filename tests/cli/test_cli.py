"""The ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_calibrate_defaults(self):
        args = build_parser().parse_args(["calibrate"])
        assert args.platform == "FCSN"
        assert args.algorithm == "random"
        assert args.metric == "mre"
        assert args.evaluations == 200

    def test_experiment_accepts_a_name(self):
        args = build_parser().parse_args(["experiment", "table3", "--scale", "tiny"])
        assert args.name == "table3"
        assert args.scale == "tiny"

    def test_invalid_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["calibrate", "--platform", "MOON"])


class TestListCommand:
    def test_lists_algorithms_and_metrics(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("random", "grid", "gdfix", "bayesian", "mre", "rmse", "SCFN"):
            assert token in out


class TestCalibrateCommand:
    def test_tiny_calibration_with_comparison(self, capsys):
        code = main([
            "calibrate", "--platform", "SCSN", "--scale", "tiny",
            "--icds", "0.0,1.0", "--algorithm", "random",
            "--evaluations", "15", "--seed", "3", "--compare",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best MRE" in out
        assert "HUMAN" in out
        assert "disk_bandwidth" in out

    def test_invalid_icds_rejected(self):
        with pytest.raises(SystemExit):
            main(["calibrate", "--icds", "zero,one", "--scale", "tiny"])


class TestSimulateCommand:
    def test_simulate_with_true_values(self, capsys):
        code = main([
            "simulate", "--platform", "FCSN", "--scale", "tiny",
            "--icds", "0.0,1.0", "--values", "true",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRE" in out
        assert "ICD  0.0" in out or "ICD 0.0" in out.replace("  ", " ")


class TestExperimentCommand:
    def test_table1_needs_no_simulation(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "114" in out  # the survey total

    def test_table2_prints_the_platform_table(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        for platform in ("SCFN", "FCFN", "SCSN", "FCSN"):
            assert platform in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestCalibrateReportAndSave:
    def test_report_and_save_options(self, capsys, tmp_path):
        out_path = tmp_path / "result.json"
        code = main([
            "calibrate", "--platform", "FCSN", "--scale", "tiny",
            "--icds", "0.0,1.0", "--algorithm", "lhs",
            "--evaluations", "12", "--seed", "2",
            "--report", "--save", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Calibration report" in out
        assert "sparkline" in out
        assert out_path.exists()

        from repro.core import load_result

        loaded = load_result(out_path)
        assert loaded.evaluations == 12
        assert loaded.algorithm == "lhs"


class TestReportCommand:
    def test_report_from_a_results_directory(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2.txt").write_text("== table2 ==\nSCFN | disabled\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "SCFN" in out

    def test_report_written_to_a_file(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure2.txt").write_text("== figure2 ==\ncurve\n")
        output = tmp_path / "REPORT.md"
        assert main(["report", "--results-dir", str(results), "--output", str(output)]) == 0
        assert output.exists()
        assert "figure2" in output.read_text() or "Figure 2" in output.read_text()
