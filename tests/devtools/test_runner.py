"""The reprolint runner: exit codes, output formats, CLI wiring, and the
self-check that the shipped source tree is clean."""

import json
import subprocess
import sys
from pathlib import Path

from repro.devtools.registry import RULES, all_rules
from repro.devtools.runner import lint_paths, main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

EXPECTED_RULES = [
    "RPL001",
    "RPL101",
    "RPL102",
    "RPL103",
    "RPL104",
    "RPL201",
    "RPL202",
    "RPL203",
    "RPL301",
    "RPL302",
    "RPL303",
    "RPL401",
    "RPL402",
]


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "locks")]) == 1
        out = capsys.readouterr().out
        assert "RPL201" in out
        assert "finding(s)" in out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2
        assert "cannot lint" in capsys.readouterr().err

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean), "--select", "RPL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestOutput:
    def test_text_format_renders_path_line_rule(self, capsys):
        main([str(FIXTURES / "determinism"), "--select", "RPL104"])
        out = capsys.readouterr().out
        assert "repro/core/bad_lease.py:13: RPL104" in out
        assert "hint:" in out

    def test_json_format_is_machine_readable(self, capsys):
        main([str(FIXTURES / "determinism"), "--format", "json"])
        records = json.loads(capsys.readouterr().out)
        assert records, "expected findings from the determinism fixture"
        for record in records:
            assert set(record) == {"path", "line", "rule", "message", "hint"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out

    def test_select_narrows_the_run(self, capsys):
        main([str(FIXTURES / "locks"), "--select", "RPL203"])
        out = capsys.readouterr().out
        assert "RPL203" in out
        assert "RPL201" not in out


class TestRegistry:
    def test_all_expected_rules_registered(self):
        main(["--list-rules"])  # forces the builtin checks to load
        assert sorted(RULES) == EXPECTED_RULES

    def test_rules_sorted_by_id(self):
        assert [r.id for r in all_rules()] == sorted(r.id for r in all_rules())


class TestSelfCheck:
    def test_shipped_source_tree_is_clean(self):
        findings, errors = lint_paths([REPO_ROOT / "src"])
        assert errors == []
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"src/ must stay reprolint-clean:\n{rendered}"

    def test_every_bad_fixture_fails_through_the_cli(self):
        for family in ("determinism", "locks", "telemetry", "asktell"):
            assert main([str(FIXTURES / family)]) == 1, family


class TestEntryPoints:
    def test_python_dash_m_module_entry(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools", str(clean)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_repro_lint_subcommand(self):
        from repro.cli.main import main as cli_main

        assert cli_main(["lint", "--list-rules"]) == 0
        assert cli_main(["lint", str(FIXTURES / "locks")]) == 1
