"""Suppression directives: parsing, scoping, and the RPL001 meta-rule."""

from pathlib import Path

from repro.devtools.context import parse_suppressions
from repro.devtools.runner import lint_paths

#: a one-line RPL104 violation usable from any path (the rule is
#: scope-free, so tmp_path fixtures need no repro/ tree)
VIOLATION = "import time\n\n\ndef f(expires_at):\n    return expires_at or (time.time() + 1.0)\n"


def lint_file(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return lint_paths([path], repo_root=tmp_path)


class TestParsing:
    def test_trailing_directive_is_line_scoped(self):
        sup = parse_suppressions(["x = 1  # reprolint: disable=RPL101"])
        assert sup.line_rules == {1: {"RPL101"}}
        assert sup.file_rules == set()
        assert sup.unjustified == []

    def test_standalone_directive_is_file_scoped(self):
        sup = parse_suppressions(["# reprolint: disable=RPL202 -- sqlite DDL at init"])
        assert sup.file_rules == {"RPL202"}
        assert sup.unjustified == []

    def test_standalone_without_reason_is_unjustified(self):
        sup = parse_suppressions(["# reprolint: disable=RPL202"])
        assert sup.file_rules == {"RPL202"}
        assert sup.unjustified == [(1, frozenset({"RPL202"}))]

    def test_multiple_rules_split_on_comma(self):
        sup = parse_suppressions(["y = 2  # reprolint: disable=RPL101, RPL103"])
        assert sup.line_rules == {1: {"RPL101", "RPL103"}}

    def test_all_wildcard(self):
        sup = parse_suppressions(["z = 3  # reprolint: disable=all"])
        assert sup.is_suppressed("RPL999", 1)
        assert not sup.is_suppressed("RPL999", 2)


class TestRunnerIntegration:
    def test_unsuppressed_violation_is_reported(self, tmp_path):
        findings, errors = lint_file(tmp_path, "plain.py", VIOLATION)
        assert errors == []
        assert [f.rule for f in findings] == ["RPL104"]

    def test_trailing_directive_suppresses_that_line(self, tmp_path):
        source = VIOLATION.replace(
            "+ 1.0)", "+ 1.0)  # reprolint: disable=RPL104"
        )
        findings, errors = lint_file(tmp_path, "line.py", source)
        assert errors == []
        assert findings == []

    def test_justified_file_directive_suppresses_the_file(self, tmp_path):
        source = "# reprolint: disable=RPL104 -- exercised by lease tests\n" + VIOLATION
        findings, errors = lint_file(tmp_path, "file.py", source)
        assert errors == []
        assert findings == []

    def test_unjustified_file_directive_raises_rpl001(self, tmp_path):
        source = "# reprolint: disable=RPL104\n" + VIOLATION
        findings, errors = lint_file(tmp_path, "nojust.py", source)
        assert errors == []
        # The RPL104 finding is suppressed, but the naked directive
        # itself becomes an RPL001 finding.
        assert [f.rule for f in findings] == ["RPL001"]
        assert "justification" in findings[0].message

    def test_rpl001_cannot_be_suppressed(self, tmp_path):
        source = "# reprolint: disable=all\n" + VIOLATION
        findings, errors = lint_file(tmp_path, "meta.py", source)
        assert errors == []
        assert [f.rule for f in findings] == ["RPL001"]

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        source = VIOLATION.replace(
            "+ 1.0)", "+ 1.0)  # reprolint: disable=RPL101"
        )
        findings, errors = lint_file(tmp_path, "wrong.py", source)
        assert errors == []
        assert [f.rule for f in findings] == ["RPL104"]


def test_src_tree_has_no_unjustified_suppressions():
    src = Path(__file__).resolve().parents[2] / "src"
    findings, errors = lint_paths([src], select={"RPL001"})
    assert errors == []
    assert findings == []
