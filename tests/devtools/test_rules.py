"""Golden-findings tests for the reprolint rule families.

Each known-bad fixture under ``fixtures/`` is a miniature ``repro/``
tree (the runner roots scope paths at the innermost ``repro`` directory)
and must produce exactly the expected rule ids on the expected lines —
no more, no less.  The fixtures are never imported; reprolint only
parses them.
"""

from pathlib import Path

import pytest

from repro.devtools.runner import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(subdir, select=None):
    # repo_root=FIXTURES: no docs/observability.md there, so the
    # doc-drift rules (RPL302/303) stay inert unless a test builds its
    # own catalog.
    findings, errors = lint_paths([FIXTURES / subdir], select=select, repo_root=FIXTURES)
    assert errors == []
    return findings


def rule_lines(findings):
    return sorted((f.rule, Path(f.path).name, f.line) for f in findings)


class TestDeterminismRules:
    def test_golden_findings(self):
        assert rule_lines(lint_fixture("determinism")) == [
            ("RPL101", "bad_determinism.py", 14),  # unseeded default_rng()
            ("RPL101", "bad_determinism.py", 15),  # legacy np.random.rand
            ("RPL102", "bad_determinism.py", 10),  # from random import ...
            ("RPL102", "bad_determinism.py", 16),  # random.random()
            ("RPL103", "bad_determinism.py", 17),  # time.time() in algorithms/
            ("RPL104", "bad_lease.py", 13),  # inline lease fallback
        ]

    def test_lease_fallback_hint_names_the_helper(self):
        (finding,) = lint_fixture("determinism", select={"RPL104"})
        assert "lease_deadline" in finding.hint

    def test_wall_clock_allowed_outside_algorithms(self):
        # bad_lease.py lives in repro/core/ (driver scope): its
        # time.time() call is legal lease bookkeeping, not RPL103.
        assert lint_fixture("determinism", select={"RPL103"}) == [
            f for f in lint_fixture("determinism", select={"RPL103"})
            if f.path.endswith("bad_determinism.py")
        ]


class TestLockRules:
    def test_golden_findings(self):
        assert rule_lines(lint_fixture("locks")) == [
            ("RPL201", "bad_locks.py", 15),  # unguarded self._count write
            ("RPL202", "bad_locks.py", 23),  # time.sleep under the lock
            ("RPL203", "bad_order.py", 17),  # A->B ...
            ("RPL203", "bad_order.py", 22),  # ... vs B->A
        ]

    def test_guarded_read_is_clean(self):
        findings = lint_fixture("locks", select={"RPL201"})
        assert all(f.line != 19 for f in findings)


class TestTelemetryRules:
    def test_only_the_unguarded_mutation_is_flagged(self):
        # The fixture exercises all three sanctioned guard idioms
        # (enclosing if, early return, hoisted instrument); only the
        # bare mutation may fire.
        assert rule_lines(lint_fixture("telemetry")) == [
            ("RPL301", "bad_metrics.py", 11),
        ]

    def _catalog_root(self, tmp_path, doc_text, code_text):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "observability.md").write_text(doc_text)
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "uses.py").write_text(code_text)
        return tmp_path

    DOC = """\
# Observability

| metric | type | description |
| --- | --- | --- |
| `repro_documented_total` | counter | In code and in the catalog. |
| `repro_stale_total` | counter | Documented but gone from code. |

| span | attributes |
| --- | --- |
| `fixture_span` | - |
| `stale_span` | - |
"""

    CODE = """\
from repro.telemetry.metrics import registry

_REGISTRY = registry()


def touch(tracer):
    if _REGISTRY.enabled:
        _REGISTRY.counter("repro_documented_total").inc()
        _REGISTRY.counter("repro_undocumented_total").inc()
    with tracer.span("fixture_span"):
        pass
    with tracer.span("mystery_span"):
        pass
"""

    def test_code_to_doc_drift(self, tmp_path):
        root = self._catalog_root(tmp_path, self.DOC, self.CODE)
        findings, errors = lint_paths([root / "repro"], select={"RPL302"}, repo_root=root)
        assert errors == []
        messages = sorted(f.message for f in findings)
        assert len(messages) == 2
        assert "repro_undocumented_total" in messages[0]
        assert "mystery_span" in messages[1]

    def test_doc_to_code_drift(self, tmp_path):
        root = self._catalog_root(tmp_path, self.DOC, self.CODE)
        findings, errors = lint_paths([root / "repro"], select={"RPL303"}, repo_root=root)
        assert errors == []
        assert sorted(f.message for f in findings) == [
            "documented metric 'repro_stale_total' no longer exists in code",
            "documented span 'stale_span' no longer exists in code",
        ]
        # Stale-catalog findings point into the doc, not into code.
        assert {f.path for f in findings} == {"docs/observability.md"}

    def test_partial_tree_lint_skips_reverse_drift(self, tmp_path):
        # With a `src/repro` layout, linting only a subtree cannot prove
        # a documented name is gone: RPL303 must stay silent, while
        # RPL302 (provable from the scanned files alone) still fires.
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "observability.md").write_text(self.DOC)
        core = tmp_path / "src" / "repro" / "core"
        core.mkdir(parents=True)
        (core / "uses.py").write_text(self.CODE)
        elsewhere = tmp_path / "src" / "repro" / "service"
        elsewhere.mkdir()
        (elsewhere / "other.py").write_text("x = 1\n")
        findings, errors = lint_paths(
            [core], select={"RPL302", "RPL303"}, repo_root=tmp_path
        )
        assert errors == []
        assert {f.rule for f in findings} == {"RPL302"}
        # The full-tree run still reports the stale entries.
        findings, errors = lint_paths(
            [tmp_path / "src"], select={"RPL303"}, repo_root=tmp_path
        )
        assert errors == []
        assert {f.rule for f in findings} == {"RPL303"}

    def test_matching_catalog_is_clean(self, tmp_path):
        doc = self.DOC.replace("| `repro_stale_total` | counter | Documented but gone from code. |\n", "")
        doc = doc.replace("| `stale_span` | - |\n", "")
        code = self.CODE.replace('        _REGISTRY.counter("repro_undocumented_total").inc()\n', "")
        code = code.replace('    with tracer.span("mystery_span"):\n        pass\n', "")
        root = self._catalog_root(tmp_path, doc, code)
        findings, errors = lint_paths(
            [root / "repro"], select={"RPL302", "RPL303"}, repo_root=root
        )
        assert errors == []
        assert findings == []


class TestAskTellRules:
    def test_golden_findings(self):
        findings = lint_fixture("asktell")
        assert rule_lines(findings) == [
            ("RPL401", "bad_algorithms.py", 8),  # missing _load_state_dict
            ("RPL401", "bad_algorithms.py", 8),  # missing _setup
            ("RPL401", "bad_algorithms.py", 8),  # missing _state_dict
            ("RPL401", "bad_algorithms.py", 8),  # missing `name`
            ("RPL401", "bad_algorithms.py", 11),  # overrides final ask()
            ("RPL401", "bad_algorithms.py", 18),  # async: missing _load_state_dict
            ("RPL401", "bad_algorithms.py", 18),  # async: missing _state_dict
            ("RPL402", "bad_algorithms.py", 18),  # async: missing _load_state_dict
            ("RPL402", "bad_algorithms.py", 18),  # async: missing _state_dict
            ("RPL402", "bad_algorithms.py", 30),  # async: overrides _tell_impl
        ]

    def test_final_override_message_names_class_and_method(self):
        findings = lint_fixture("asktell", select={"RPL401"})
        override = [f for f in findings if f.line == 11]
        assert len(override) == 1
        assert "Incomplete" in override[0].message
        assert "ask()" in override[0].message


@pytest.mark.parametrize("family", ["determinism", "locks", "telemetry", "asktell"])
def test_every_fixture_family_triggers(family):
    assert lint_fixture(family), f"fixture family {family!r} produced no findings"
