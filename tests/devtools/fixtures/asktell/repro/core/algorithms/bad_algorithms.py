"""Known-bad fixture for RPL401/RPL402: ask/tell conformance.

Never imported — parsed by reprolint only.
"""
from repro.core.algorithms.base import CalibrationAlgorithm


class Incomplete(CalibrationAlgorithm):
    """RPL401: missing hooks and `name`, overrides the final ask()."""

    def ask(self, rng, n=1):  # RPL401: final protocol override
        return []

    def _generate(self, rng, n):
        return []


class BadAsync(CalibrationAlgorithm):
    """RPL402: claims the async ledger but breaks its contract."""

    name = "bad-async"
    supports_async_tell = True

    def _setup(self, space):
        pass

    def _generate(self, rng, n):
        return []

    def _tell_impl(self, candidates, values):  # RPL402: ledger override
        pass
