"""Known-bad fixture for RPL301: unguarded metric mutation.

Never imported — parsed by reprolint only.
"""
from repro.telemetry.metrics import registry as _metrics_registry

_REGISTRY = _metrics_registry()


def record_unguarded(n):
    _REGISTRY.counter("repro_fixture_dispatches_total").inc(n)  # RPL301


def record_guarded(n):
    if _REGISTRY.enabled:
        _REGISTRY.counter("repro_fixture_dispatches_total").inc(n)  # OK


def record_early_return(n):
    if not _REGISTRY.enabled:
        return
    _REGISTRY.counter("repro_fixture_dispatches_total").inc(n)  # OK


def record_hoisted(n):
    reg = _REGISTRY if _REGISTRY.enabled else None
    m_dispatches = None if reg is None else reg.counter("repro_fixture_dispatches_total")
    if m_dispatches is not None:
        m_dispatches.inc(n)  # OK
