"""Known-bad fixture for RPL203: inconsistent lock acquisition order.

Never imported — parsed by reprolint only.  ``forward`` nests B under A,
``backward`` nests A under B: a cycle, hence a potential deadlock.
"""
import threading


class TwoLocks:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._data = {}

    def forward(self):
        with self._a:
            with self._b:  # RPL203: A -> B ...
                return len(self._data)

    def backward(self):
        with self._b:
            with self._a:  # RPL203: ... conflicts with B -> A
                return len(self._data)
