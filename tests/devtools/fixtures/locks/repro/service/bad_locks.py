"""Known-bad fixture for RPL201/RPL202: lock discipline.

Never imported — parsed by reprolint only.
"""
import threading
import time


class LeakyTable:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        self._count += 1  # RPL201: write outside the lock

    def read(self):
        with self._lock:
            return self._count

    def slow_scan(self):
        with self._lock:
            time.sleep(0.1)  # RPL202: blocking call under the lock
