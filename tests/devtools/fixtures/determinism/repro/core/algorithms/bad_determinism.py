"""Known-bad fixture for the RPL1xx determinism rules.

Never imported — parsed by reprolint only.  Each violation is labelled
with the rule id the test suite expects on that line.
"""
import random
import time

import numpy as np
from random import shuffle  # RPL102: from-import of stdlib random


def entropy_leak():
    rng = np.random.default_rng()  # RPL101: unseeded generator
    legacy = np.random.rand(3)  # RPL101: legacy global-state API
    jitter = random.random()  # RPL102: process-global stdlib state
    stamp = time.time()  # RPL103: wall clock in algorithm code
    shuffle(legacy)
    return rng, legacy, jitter, stamp
