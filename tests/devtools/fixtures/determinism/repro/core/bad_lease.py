"""Known-bad fixture for RPL104: inline lease-expiry fallback.

Never imported — parsed by reprolint only.  This file sits in
``repro/core/`` (not ``algorithms/``), where wall-clock reads are
allowed (lease bookkeeping) but the inline ``or`` fallback is not.
"""
import time

LEASE_TTL = 1.0


def lease_expiry(expires_at):
    return expires_at or (time.time() + LEASE_TTL)  # RPL104
