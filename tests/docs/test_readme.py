"""The README is executable documentation.

Every ``python`` fenced block in README.md runs, in order, in one shared
namespace (later blocks may build on earlier ones); every ``repro ...``
command shown in a ``console`` block must parse against the real CLI; and
every relative markdown link in README.md and docs/architecture.md must
point at a file or directory that exists.  A README that drifts from the
code fails here, not in a user's terminal.
"""

import re
from pathlib import Path

import pytest

from repro.cli.main import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
README = REPO_ROOT / "README.md"
DOCS = [
    README,
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "distributed.md",
    REPO_ROOT / "docs" / "observability.md",
]

FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)
LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")


def fenced_blocks(path, language):
    return [body for lang, body in FENCE.findall(path.read_text()) if lang == language]


def test_readme_exists_with_quickstarts():
    text = README.read_text()
    assert "Quickstart" in text
    assert "ask/tell" in text


def test_readme_python_blocks_execute():
    blocks = fenced_blocks(README, "python")
    assert len(blocks) >= 3, "the README lost its runnable quickstart snippets"
    namespace = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md#python-block-{index}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assertion is the point
            pytest.fail(f"README python block {index} failed: {exc!r}\n{block}")


def test_readme_cli_commands_parse():
    parser = build_parser()
    commands = []
    for block in fenced_blocks(README, "console"):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("repro "):
                commands.append(line[len("repro "):].split("#")[0].strip())
    assert commands, "the README lost its CLI quickstart"
    for command in commands:
        try:
            parser.parse_args(command.split())
        except SystemExit:
            pytest.fail(f"README shows a CLI invocation that does not parse: repro {command}")


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    assert doc.exists(), f"{doc} is missing"
    for target in LINK.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "#")):
            continue
        resolved = (doc.parent / target.split("#")[0]).resolve()
        assert resolved.exists(), f"{doc.name} links to missing path {target}"
