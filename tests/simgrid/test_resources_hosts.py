"""Hosts, links, disks, memories and platform descriptions."""

import pytest

from repro.simgrid import Platform, SimulationEngine
from repro.simgrid.disk import Disk
from repro.simgrid.errors import PlatformError
from repro.simgrid.host import Host
from repro.simgrid.link import Link
from repro.simgrid.memory import Memory
from repro.simgrid.network import communicate
from repro.simgrid.resources import Resource


class TestResource:
    def test_positive_capacity_required(self):
        with pytest.raises(PlatformError):
            Resource("bad", 0.0)
        with pytest.raises(PlatformError):
            Resource("bad", -5.0)

    def test_set_capacity(self):
        r = Resource("r", 10.0)
        r.set_capacity(20.0)
        assert r.capacity == 20.0
        with pytest.raises(PlatformError):
            r.set_capacity(0.0)


class TestHost:
    def test_cpu_capacity_is_speed_times_cores(self):
        host = Host(SimulationEngine(), "h", speed=2e9, cores=4)
        assert host.cpu.capacity == pytest.approx(8e9)

    def test_exec_rate_capped_at_one_core(self):
        engine = SimulationEngine()
        host = Host(engine, "h", speed=1e9, cores=4)
        done = {}

        def proc():
            yield host.exec_async("solo", 2e9)
            done["t"] = engine.now

        engine.add_process(proc(), "p")
        engine.run()
        # A single task cannot use more than one core: 2e9 / 1e9 = 2 s.
        assert done["t"] == pytest.approx(2.0)

    def test_parallel_task_uses_multiple_cores(self):
        engine = SimulationEngine()
        host = Host(engine, "h", speed=1e9, cores=4)
        done = {}

        def proc():
            yield host.exec_async("par", 2e9, parallelism=2)
            done["t"] = engine.now

        engine.add_process(proc(), "p")
        engine.run()
        assert done["t"] == pytest.approx(1.0)

    def test_oversubscription_shares_cores(self):
        engine = SimulationEngine()
        host = Host(engine, "h", speed=1e9, cores=2)
        times = {}

        def proc(i):
            yield host.exec_async(f"t{i}", 1e9)
            times[i] = engine.now

        for i in range(4):
            engine.add_process(proc(i), f"p{i}")
        engine.run()
        # 4 x 1e9 flops on 2e9 flop/s total capacity = 2 s for all.
        assert all(t == pytest.approx(2.0) for t in times.values())

    def test_set_speed_updates_cpu_capacity(self):
        host = Host(SimulationEngine(), "h", speed=1e9, cores=2)
        host.set_speed(3e9)
        assert host.speed == 3e9
        assert host.cpu.capacity == pytest.approx(6e9)

    def test_invalid_host_parameters(self):
        engine = SimulationEngine()
        with pytest.raises(PlatformError):
            Host(engine, "h", speed=0.0)
        with pytest.raises(PlatformError):
            Host(engine, "h", speed=1e9, cores=0)
        host = Host(engine, "h", speed=1e9)
        with pytest.raises(PlatformError):
            host.exec_async("bad", 1.0, parallelism=0)


class TestDiskAndMemory:
    def test_disk_read_write_bandwidths(self):
        engine = SimulationEngine()
        disk = Disk(engine, "hdd", read_bandwidth=100.0, write_bandwidth=50.0)
        times = {}

        def proc():
            yield disk.read_async("r", 1000.0)
            times["read"] = engine.now
            yield disk.write_async("w", 1000.0)
            times["write"] = engine.now

        engine.add_process(proc(), "p")
        engine.run()
        assert times["read"] == pytest.approx(10.0)
        assert times["write"] == pytest.approx(30.0)

    def test_disk_seek_latency(self):
        engine = SimulationEngine()
        disk = Disk(engine, "hdd", read_bandwidth=100.0, read_latency=0.5)
        done = {}

        def proc():
            yield disk.read_async("r", 100.0)
            done["t"] = engine.now

        engine.add_process(proc(), "p")
        engine.run()
        assert done["t"] == pytest.approx(1.5)

    def test_disk_set_bandwidth(self):
        disk = Disk(SimulationEngine(), "hdd", read_bandwidth=100.0)
        disk.set_bandwidth(200.0)
        assert disk.read_bandwidth == 200.0
        assert disk.write_bandwidth == 200.0
        with pytest.raises(PlatformError):
            disk.set_bandwidth(-1.0)

    def test_memory_faster_than_disk(self):
        engine = SimulationEngine()
        memory = Memory(engine, "ram", bandwidth=1e9)
        done = {}

        def proc():
            yield memory.read_async("r", 1e9)
            done["t"] = engine.now

        engine.add_process(proc(), "p")
        engine.run()
        assert done["t"] == pytest.approx(1.0)

    def test_memory_requires_positive_bandwidth(self):
        with pytest.raises(PlatformError):
            Memory(SimulationEngine(), "ram", bandwidth=0.0)


class TestLinkAndRoutes:
    def test_link_properties(self):
        link = Link(SimulationEngine(), "l", bandwidth=1e8, latency=0.01)
        assert link.bandwidth == 1e8
        link.set_bandwidth(2e8)
        assert link.bandwidth == 2e8
        link.set_latency(0.02)
        assert link.latency == 0.02
        with pytest.raises(PlatformError):
            link.set_latency(-1.0)

    def test_communicate_requires_links(self):
        with pytest.raises(PlatformError):
            communicate("c", 100.0, [])

    def test_multi_link_route_latency_and_bottleneck(self):
        engine = SimulationEngine()
        fast = Link(engine, "fast", bandwidth=1e9, latency=0.1)
        slow = Link(engine, "slow", bandwidth=1e8, latency=0.2)
        done = {}

        def proc():
            yield communicate("c", 1e8, [fast, slow])
            done["t"] = engine.now

        engine.add_process(proc(), "p")
        engine.run()
        # latency 0.3 s + 1e8 bytes at the 1e8 B/s bottleneck = 1.3 s.
        assert done["t"] == pytest.approx(1.3)


class TestPlatform:
    def test_duplicate_names_rejected(self):
        p = Platform("p")
        p.add_host("h", 1e9)
        with pytest.raises(PlatformError):
            p.add_host("h", 1e9)
        p.add_link("l", 1e8)
        with pytest.raises(PlatformError):
            p.add_link("l", 1e8)

    def test_route_lookup_and_symmetry(self):
        p = Platform("p")
        a = p.add_host("a", 1e9)
        b = p.add_host("b", 1e9)
        link = p.add_link("ab", 1e8)
        p.add_route(a, b, [link])
        assert p.route(a, b) == [link]
        assert p.route(b, a) == [link]
        assert p.route(a, a) == []
        assert p.has_route(a, b)

    def test_missing_route_raises(self):
        p = Platform("p")
        a = p.add_host("a", 1e9)
        b = p.add_host("b", 1e9)
        with pytest.raises(PlatformError):
            p.route(a, b)

    def test_loopback_transfer_is_instantaneous(self):
        p = Platform("p")
        a = p.add_host("a", 1e9)
        done = {}

        def proc():
            yield p.transfer_async("self", 1e9, a, a)
            done["t"] = p.engine.now

        p.engine.add_process(proc(), "p")
        p.engine.run()
        assert done["t"] == pytest.approx(0.0)

    def test_summary_mentions_all_elements(self):
        p = Platform("site")
        h = p.add_host("n1", 1e9, cores=4)
        p.add_disk(h, "hdd", 1e8)
        p.add_memory(h, "ram", 1e10)
        p.add_link("wan", 1e8, 0.01)
        text = p.summary()
        for token in ("site", "n1", "hdd", "ram", "wan"):
            assert token in text

    def test_host_by_name(self):
        p = Platform("p")
        h = p.add_host("a", 1e9)
        assert p.host_by_name("a") is h
        with pytest.raises(PlatformError):
            p.host_by_name("missing")
