"""Max-min fair sharing solver: exact cases and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgrid.activity import Activity
from repro.simgrid.resources import Resource
from repro.simgrid.sharing import solve_max_min


def make_activity(name, usages, cap=None, amount=100.0):
    return Activity(name, amount, usages, rate_cap=cap)


class TestExactCases:
    def test_single_activity_single_resource(self):
        r = Resource("r", 100.0)
        a = make_activity("a", {r: 1.0})
        assert solve_max_min([a])[a] == pytest.approx(100.0)

    def test_rate_cap_limits_single_activity(self):
        r = Resource("r", 100.0)
        a = make_activity("a", {r: 1.0}, cap=30.0)
        assert solve_max_min([a])[a] == pytest.approx(30.0)

    def test_equal_split_between_two_activities(self):
        r = Resource("r", 100.0)
        a = make_activity("a", {r: 1.0})
        b = make_activity("b", {r: 1.0})
        rates = solve_max_min([a, b])
        assert rates[a] == pytest.approx(50.0)
        assert rates[b] == pytest.approx(50.0)

    def test_capped_activity_frees_capacity_for_the_other(self):
        r = Resource("r", 100.0)
        a = make_activity("a", {r: 1.0}, cap=20.0)
        b = make_activity("b", {r: 1.0})
        rates = solve_max_min([a, b])
        assert rates[a] == pytest.approx(20.0)
        assert rates[b] == pytest.approx(80.0)

    def test_bottleneck_link_on_multi_resource_flow(self):
        fast = Resource("fast", 1000.0)
        slow = Resource("slow", 10.0)
        flow = make_activity("flow", {fast: 1.0, slow: 1.0})
        assert solve_max_min([flow])[flow] == pytest.approx(10.0)

    def test_two_flows_sharing_only_one_link(self):
        shared = Resource("shared", 100.0)
        private_a = Resource("pa", 1000.0)
        private_b = Resource("pb", 30.0)
        a = make_activity("a", {shared: 1.0, private_a: 1.0})
        b = make_activity("b", {shared: 1.0, private_b: 1.0})
        rates = solve_max_min([a, b])
        # b is limited to 30 by its private link; a picks up the slack.
        assert rates[b] == pytest.approx(30.0)
        assert rates[a] == pytest.approx(70.0)

    def test_usage_weights_scale_consumption(self):
        r = Resource("r", 90.0)
        heavy = make_activity("heavy", {r: 2.0})
        light = make_activity("light", {r: 1.0})
        rates = solve_max_min([heavy, light])
        # Max-min equalises the rates; consumption is rate * usage.
        assert rates[heavy] == pytest.approx(30.0)
        assert rates[light] == pytest.approx(30.0)

    def test_activity_without_resources_gets_cap(self):
        a = make_activity("a", {}, cap=5.0)
        assert solve_max_min([a])[a] == pytest.approx(5.0)

    def test_activity_without_resources_or_cap_is_unbounded(self):
        a = make_activity("a", {})
        assert math.isinf(solve_max_min([a])[a])

    def test_empty_input(self):
        assert solve_max_min([]) == {}

    def test_three_flows_two_links_classic_maxmin(self):
        # Classic example: l1 capacity 1 shared by f0 and f1; l2 capacity 2
        # shared by f0 and f2.  Max-min allocation: f0=f1=0.5, f2=1.5.
        l1 = Resource("l1", 1.0)
        l2 = Resource("l2", 2.0)
        f0 = make_activity("f0", {l1: 1.0, l2: 1.0})
        f1 = make_activity("f1", {l1: 1.0})
        f2 = make_activity("f2", {l2: 1.0})
        rates = solve_max_min([f0, f1, f2])
        assert rates[f0] == pytest.approx(0.5)
        assert rates[f1] == pytest.approx(0.5)
        assert rates[f2] == pytest.approx(1.5)


@st.composite
def sharing_problems(draw):
    n_resources = draw(st.integers(min_value=1, max_value=5))
    resources = [
        Resource(f"r{i}", draw(st.floats(min_value=1.0, max_value=1e6)))
        for i in range(n_resources)
    ]
    n_activities = draw(st.integers(min_value=1, max_value=12))
    activities = []
    for i in range(n_activities):
        used = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_resources - 1),
                min_size=1,
                max_size=n_resources,
                unique=True,
            )
        )
        cap = draw(st.one_of(st.none(), st.floats(min_value=0.5, max_value=1e6)))
        activities.append(make_activity(f"a{i}", {resources[j]: 1.0 for j in used}, cap=cap))
    return resources, activities


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(sharing_problems())
    def test_capacities_never_exceeded(self, problem):
        resources, activities = problem
        rates = solve_max_min(activities)
        for resource in resources:
            consumed = sum(
                rates[a] * a.usages.get(resource, 0.0) for a in activities
            )
            assert consumed <= resource.capacity * (1.0 + 1e-6)

    @settings(max_examples=60, deadline=None)
    @given(sharing_problems())
    def test_caps_respected_and_rates_nonnegative(self, problem):
        _, activities = problem
        rates = solve_max_min(activities)
        for activity in activities:
            assert rates[activity] >= 0.0
            if activity.rate_cap is not None:
                assert rates[activity] <= activity.rate_cap * (1.0 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(sharing_problems())
    def test_no_starvation(self, problem):
        """Every activity that uses at least one resource gets a positive rate."""
        _, activities = problem
        rates = solve_max_min(activities)
        for activity in activities:
            assert rates[activity] > 0.0

    @settings(max_examples=40, deadline=None)
    @given(sharing_problems())
    def test_every_activity_has_a_saturated_constraint(self, problem):
        """Max-min property: each activity is limited by its cap or by at
        least one saturated resource it uses."""
        resources, activities = problem
        rates = solve_max_min(activities)
        consumed = {
            r: sum(rates[a] * a.usages.get(r, 0.0) for a in activities) for r in resources
        }
        for activity in activities:
            at_cap = (
                activity.rate_cap is not None
                and rates[activity] >= activity.rate_cap * (1 - 1e-6)
            )
            saturated = any(
                consumed[r] >= r.capacity * (1 - 1e-6) for r in activity.usages
            )
            assert at_cap or saturated
