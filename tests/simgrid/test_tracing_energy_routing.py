"""Engine observers (tracing), the host energy model and topology routing."""

import json

import pytest

from repro.simgrid import (
    ActivityTracer,
    EnergyMeter,
    NetworkTopology,
    Platform,
    PlatformError,
    PowerProfile,
)


def build_two_host_platform():
    platform = Platform("trace-test")
    a = platform.add_host("alpha", 1e9, cores=2)
    b = platform.add_host("beta", 1e9, cores=2)
    link = platform.add_link("wire", 1e8, latency=0.0)
    platform.add_route(a, b, [link])
    platform.add_disk(a, "alpha_disk", 1e8)
    return platform, a, b, link


class TestActivityTracer:
    def run_simple_workflow(self, keep_zero_work=False):
        platform, a, b, _ = build_two_host_platform()
        tracer = ActivityTracer(keep_zero_work=keep_zero_work)
        platform.engine.add_observer(tracer)

        def process():
            yield a.exec_async("crunch", 2e9)                       # 1 s on one core
            yield platform.transfer_async("ship", 1e8, a, b)        # 1 s on the link
            yield a.disks["alpha_disk"].read_async("load", 5e7)     # 0.5 s on the disk
            yield platform.transfer_async("loopback", 1e6, a, a)    # zero-work activity

        platform.engine.add_process(process(), "main")
        platform.engine.run()
        return platform, tracer

    def test_records_classified_activities(self):
        platform, tracer = self.run_simple_workflow()
        assert len(tracer) == 3  # the zero-work loopback is skipped by default
        kinds = {record.kind for record in tracer.records}
        assert kinds == {"compute", "network", "disk"}
        assert tracer.makespan() == pytest.approx(platform.engine.now)

    def test_keep_zero_work_records_loopbacks(self):
        _, tracer = self.run_simple_workflow(keep_zero_work=True)
        assert len(tracer) == 4

    def test_busy_time_by_kind(self):
        _, tracer = self.run_simple_workflow()
        assert tracer.busy_time("compute") == pytest.approx(2.0, rel=1e-6)
        assert tracer.busy_time("network") == pytest.approx(1.0, rel=1e-6)
        assert tracer.busy_time() == pytest.approx(3.5, rel=1e-6)

    def test_summary_and_json_roundtrip(self):
        _, tracer = self.run_simple_workflow()
        summary = tracer.summary()
        assert summary["compute_count"] == 1.0
        assert summary["makespan"] > 0
        decoded = json.loads(tracer.to_json())
        assert len(decoded) == 3
        assert {d["kind"] for d in decoded} == {"compute", "network", "disk"}

    def test_gantt_rendering(self):
        _, tracer = self.run_simple_workflow()
        chart = tracer.gantt(width=30)
        assert "crunch" in chart
        assert "#" in chart
        assert ActivityTracer().gantt() == "(no traced activities)"

    def test_observer_can_be_removed(self):
        platform, a, _, _ = build_two_host_platform()
        tracer = ActivityTracer()
        platform.engine.add_observer(tracer)
        platform.engine.remove_observer(tracer)
        platform.engine.remove_observer(tracer)  # second removal is a no-op

        def process():
            yield a.exec_async("quick", 1e9)

        platform.engine.add_process(process(), "main")
        platform.engine.run()
        assert len(tracer) == 0

    def test_canceled_activities_are_marked(self):
        platform, a, _, _ = build_two_host_platform()
        tracer = ActivityTracer()
        platform.engine.add_observer(tracer)
        activity = a.exec_async("doomed", 1e12)
        platform.engine.start_activity(activity)
        platform.engine.schedule(0.5, lambda: platform.engine.cancel_activity(activity))
        platform.engine.run()
        assert len(tracer) == 1
        assert tracer.records[0].canceled is True


class TestEnergyMeter:
    def test_idle_host_draws_idle_power(self):
        platform, a, b, _ = build_two_host_platform()
        meter = EnergyMeter()
        meter.register(a, PowerProfile(idle_watts=100, loaded_watts=200))

        def process():
            yield b.exec_async("other-host-work", 1e9)

        platform.engine.add_process(process(), "main")
        platform.engine.run()
        # Host a never computed: it pays exactly the idle wattage.
        assert meter.energy(a, platform.engine.now) == pytest.approx(100 * platform.engine.now)

    def test_busy_host_draws_interpolated_power(self):
        platform, a, _, _ = build_two_host_platform()
        meter = EnergyMeter()
        meter.register(a, PowerProfile(idle_watts=100, loaded_watts=300))

        def process():
            yield a.exec_async("work", 2e9)  # one of the two cores busy for 2 s

        platform.engine.add_process(process(), "main")
        platform.engine.run()
        now = platform.engine.now
        assert now == pytest.approx(2.0, rel=1e-6)
        # Average utilisation is 50% (one of two cores): power = 200 W.
        assert meter.energy(a, now) == pytest.approx(200 * 2.0, rel=1e-3)

    def test_report_totals_all_hosts(self):
        platform, a, b, _ = build_two_host_platform()
        meter = EnergyMeter()
        meter.register_all([a, b], PowerProfile(idle_watts=50, loaded_watts=100))
        platform.engine.run()
        report = meter.report(0.0)
        assert report["total"] == pytest.approx(report["alpha"] + report["beta"])

    def test_unregistered_host_raises(self):
        platform, a, _, _ = build_two_host_platform()
        with pytest.raises(PlatformError):
            EnergyMeter().energy(a, 1.0)

    def test_power_profile_validation(self):
        with pytest.raises(PlatformError):
            PowerProfile(idle_watts=-1, loaded_watts=10)
        with pytest.raises(PlatformError):
            PowerProfile(idle_watts=100, loaded_watts=50)
        profile = PowerProfile(idle_watts=100, loaded_watts=200)
        assert profile.power_at(-0.5) == 100
        assert profile.power_at(2.0) == 200


class TestNetworkTopology:
    def build_star(self):
        """Two leaf hosts behind a router, plus a directly attached storage host."""
        platform = Platform("topo")
        h1 = platform.add_host("h1", 1e9)
        h2 = platform.add_host("h2", 1e9)
        storage = platform.add_host("storage", 1e9)
        lan1 = platform.add_link("lan1", 1e9, latency=0.001)
        lan2 = platform.add_link("lan2", 1e9, latency=0.001)
        wan = platform.add_link("wan", 1e8, latency=0.05)
        topo = NetworkTopology(platform)
        for host in (h1, h2, storage):
            topo.add_host(host)
        topo.add_router("site-gw")
        topo.connect("h1", "site-gw", lan1)
        topo.connect("h2", "site-gw", lan2)
        topo.connect("site-gw", "storage", wan)
        return platform, topo

    def test_apply_registers_all_host_pairs(self):
        platform, topo = self.build_star()
        count = topo.apply(weight="latency")
        assert count == 3  # (h1,h2), (h1,storage), (h2,storage)
        h1, storage = platform.host_by_name("h1"), platform.host_by_name("storage")
        route = platform.route(h1, storage)
        assert [link.name for link in route] == ["lan1", "wan"]

    def test_bottleneck_link(self):
        _, topo = self.build_star()
        assert topo.bottleneck_link("h1", "storage").name == "wan"

    def test_shortest_route_weight_policies(self):
        platform = Platform("multi-path")
        a = platform.add_host("a", 1e9)
        b = platform.add_host("b", 1e9)
        slow_direct = platform.add_link("direct", 1e6, latency=0.001)
        fast1 = platform.add_link("fast1", 1e9, latency=0.001)
        fast2 = platform.add_link("fast2", 1e9, latency=0.001)
        topo = NetworkTopology(platform)
        topo.add_host(a)
        topo.add_host(b)
        topo.add_router("mid")
        topo.connect("a", "b", slow_direct)
        topo.connect("a", "mid", fast1)
        topo.connect("mid", "b", fast2)
        by_hops = topo.shortest_route("a", "b", weight="hops")
        by_cost = topo.shortest_route("a", "b", weight="transfer_cost")
        assert [l.name for l in by_hops] == ["direct"]
        assert [l.name for l in by_cost] == ["fast1", "fast2"]

    def test_errors(self):
        platform, topo = self.build_star()
        with pytest.raises(PlatformError):
            topo.connect("h1", "unknown-node", platform.links["lan1"])
        with pytest.raises(PlatformError):
            topo.connect("h1", "h1", platform.links["lan1"])
        with pytest.raises(PlatformError):
            topo.shortest_route("h1", "storage", weight="carbon")
        with pytest.raises(PlatformError):
            topo.add_router("h1")
        with pytest.raises(PlatformError):
            NetworkTopology(platform).shortest_route("nowhere", "h1")

    def test_describe_mentions_every_edge(self):
        _, topo = self.build_star()
        text = topo.describe()
        for name in ("lan1", "lan2", "wan"):
            assert name in text
