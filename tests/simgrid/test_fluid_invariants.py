"""Analytic invariants of the fluid model, checked end to end.

The SimGrid-style fluid model has closed-form answers for simple workloads;
these property-based tests drive the whole stack (platform, activities,
engine, max-min sharing) and compare against them:

* a single computation of ``W`` flops on an idle host takes ``W / speed``;
* ``n <= cores`` identical computations run at full speed; ``n`` identical
  computations on one core serialise perfectly under fair sharing (they all
  finish together at ``n`` times the solo duration);
* a transfer of ``S`` bytes over a link takes ``latency + S / bandwidth``;
* bandwidth sharing conserves work: however many flows share a link, the
  last completion time equals ``total bytes / bandwidth`` (plus latency),
  and a flow can never finish earlier than its fair share allows.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgrid import Platform


def run_engine(platform):
    platform.engine.run()
    return platform.engine.now


class TestComputeInvariants:
    @given(
        flops=st.floats(1e6, 1e12),
        speed=st.floats(1e6, 1e11),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_exec_duration(self, flops, speed):
        platform = Platform("solo")
        host = platform.add_host("h", speed, cores=2)

        def process():
            yield host.exec_async("work", flops)

        platform.engine.add_process(process(), "p")
        assert run_engine(platform) == pytest.approx(flops / speed, rel=1e-6)

    @given(n=st.integers(1, 6), cores=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_identical_concurrent_execs_share_fairly(self, n, cores):
        speed, flops = 1e9, 2e9
        platform = Platform("shared")
        host = platform.add_host("h", speed, cores=cores)

        def process(i):
            yield host.exec_async(f"work{i}", flops)

        for i in range(n):
            platform.engine.add_process(process(i), f"p{i}")
        elapsed = run_engine(platform)
        # With fair sharing of `cores * speed` capacity and a per-task cap of
        # one core, n identical tasks all finish together.
        expected = (flops / speed) * max(1.0, n / cores)
        assert elapsed == pytest.approx(expected, rel=1e-6)


class TestNetworkInvariants:
    @given(
        size=st.floats(1e5, 1e11),
        bandwidth=st.floats(1e6, 1e10),
        latency=st.floats(0.0, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_transfer_duration(self, size, bandwidth, latency):
        platform = Platform("net")
        a = platform.add_host("a", 1e9)
        b = platform.add_host("b", 1e9)
        link = platform.add_link("l", bandwidth, latency=latency)
        platform.add_route(a, b, [link])

        def process():
            yield platform.transfer_async("move", size, a, b)

        platform.engine.add_process(process(), "p")
        assert run_engine(platform) == pytest.approx(latency + size / bandwidth, rel=1e-6)

    @given(sizes=st.lists(st.floats(1e6, 1e9), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_bandwidth_sharing_conserves_work(self, sizes):
        bandwidth = 1e8
        platform = Platform("sharing")
        a = platform.add_host("a", 1e9)
        b = platform.add_host("b", 1e9)
        link = platform.add_link("l", bandwidth, latency=0.0)
        platform.add_route(a, b, [link])
        finish_times = {}

        def process(i, size):
            yield platform.transfer_async(f"flow{i}", size, a, b)
            finish_times[i] = platform.engine.now

        for i, size in enumerate(sizes):
            platform.engine.add_process(process(i, size), f"p{i}")
        elapsed = run_engine(platform)

        # Work conservation: the link is never idle while work remains, so
        # the last flow finishes exactly when the total volume has moved.
        assert elapsed == pytest.approx(sum(sizes) / bandwidth, rel=1e-6)
        # No flow can beat its best case (alone on the link) nor finish while
        # more than its fair share of the time would still be needed.
        for i, size in enumerate(sizes):
            assert finish_times[i] >= size / bandwidth - 1e-9
            assert finish_times[i] <= elapsed + 1e-9

    def test_two_flow_crossover_times(self):
        """Analytic check of the classic two-flow case: equal rates until the
        small flow ends, then the big one gets the whole link."""
        bandwidth, small, big = 1e8, 2e8, 6e8
        platform = Platform("two-flows")
        a = platform.add_host("a", 1e9)
        b = platform.add_host("b", 1e9)
        link = platform.add_link("l", bandwidth, latency=0.0)
        platform.add_route(a, b, [link])
        finish = {}

        def process(name, size):
            yield platform.transfer_async(name, size, a, b)
            finish[name] = platform.engine.now

        platform.engine.add_process(process("small", small), "ps")
        platform.engine.add_process(process("big", big), "pb")
        run_engine(platform)
        assert finish["small"] == pytest.approx(2 * small / bandwidth, rel=1e-6)
        assert finish["big"] == pytest.approx((small + big) / bandwidth, rel=1e-6)


class TestDiskInvariants:
    @given(
        size=st.floats(1e5, 1e10),
        read_bw=st.floats(1e6, 1e9),
        latency=st.floats(0.0, 0.05),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_read_duration(self, size, read_bw, latency):
        platform = Platform("disk")
        host = platform.add_host("h", 1e9)
        disk = platform.add_disk(host, "d", read_bw, read_latency=latency)

        def process():
            yield disk.read_async("load", size)

        platform.engine.add_process(process(), "p")
        assert run_engine(platform) == pytest.approx(latency + size / read_bw, rel=1e-6)

    def test_mixed_read_write_share_the_device(self):
        """A read and a write issued together share the device capacity and
        finish no earlier than work conservation allows."""
        platform = Platform("mixed")
        host = platform.add_host("h", 1e9)
        disk = platform.add_disk(host, "d", read_bandwidth=1e8, write_bandwidth=1e8)

        def process():
            from repro.simgrid.process import AllOf

            yield AllOf([disk.read_async("r", 3e8), disk.write_async("w", 3e8)])

        platform.engine.add_process(process(), "p")
        elapsed = run_engine(platform)
        assert elapsed == pytest.approx(6e8 / 1e8, rel=1e-6)
