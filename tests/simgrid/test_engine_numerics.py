"""Numerical robustness of the discrete-event engine.

Regression tests for floating-point starvation: when activity rates differ
by many orders of magnitude late in a long simulation, the next completion
delay can be smaller than one ULP of the simulated clock.  The engine must
still make progress (it force-completes activities whose remaining time is
below the clock resolution) — without this, extreme calibration candidates
(e.g. a multi-GB/s page cache next to a ~6 MB/s WAN) hang the simulator.
"""

import signal

import pytest

from repro.simgrid import Platform, SimulationEngine
from repro.simgrid.process import Timeout


class _Watchdog:
    """Fail the test (instead of hanging the suite) if the block runs too long."""

    def __init__(self, seconds: int) -> None:
        self.seconds = seconds

    def __enter__(self):
        def handler(signum, frame):
            raise TimeoutError(f"engine failed to make progress within {self.seconds}s")

        self._previous = signal.signal(signal.SIGALRM, handler)
        signal.alarm(self.seconds)
        return self

    def __exit__(self, *exc):
        signal.alarm(0)
        signal.signal(signal.SIGALRM, self._previous)
        return False


class TestClockResolutionCompletion:
    def test_sub_ulp_activity_late_in_a_long_simulation(self):
        """An activity whose duration is below the clock's floating-point
        resolution must still complete when started at a large simulated
        time."""
        platform = Platform("numerics")
        fast_host = platform.add_host("fast", 1e10, cores=1)

        def process():
            yield Timeout(1e6)                      # advance the clock far
            yield fast_host.exec_async("tiny", 1e-5)  # ~1e-15 s of work

        platform.engine.add_process(process(), "main")
        with _Watchdog(20):
            platform.engine.run()
        assert platform.engine.now >= 1e6

    def test_extreme_rate_disparity_between_concurrent_activities(self):
        """A very slow bulk activity and a stream of very fast small ones
        must coexist without starving the event loop."""
        platform = Platform("disparity")
        slow_host = platform.add_host("slow", 1e3, cores=1)
        fast_host = platform.add_host("fast", 1e11, cores=1)

        def bulk():
            yield slow_host.exec_async("bulk", 2e9)  # 2e6 simulated seconds

        def chatter():
            for i in range(50):
                yield Timeout(4e4)
                yield fast_host.exec_async(f"blip{i}", 1e-3)

        platform.engine.add_process(bulk(), "bulk")
        platform.engine.add_process(chatter(), "chatter")
        with _Watchdog(30):
            platform.engine.run()
        assert platform.engine.now == pytest.approx(2e6, rel=1e-3)
        assert platform.engine.completed_activity_count == 51
