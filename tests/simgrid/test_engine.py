"""Discrete-event engine: clock, timers, activities, fluid model."""

import pytest

from repro.simgrid import ActivityState, Platform, SimulationEngine, Timeout
from repro.simgrid.activity import Activity
from repro.simgrid.errors import DeadlockError, InvalidStateError, SimulationError
from repro.simgrid.resources import Resource


def test_clock_starts_at_zero():
    assert SimulationEngine().now == 0.0


def test_empty_run_terminates_immediately():
    engine = SimulationEngine()
    assert engine.run() == 0.0


def test_timer_ordering_and_clock_advance():
    engine = SimulationEngine()
    fired = []
    engine.schedule(2.0, lambda: fired.append(("b", engine.now)))
    engine.schedule(1.0, lambda: fired.append(("a", engine.now)))
    engine.run()
    assert fired == [("a", 1.0), ("b", 2.0)]
    assert engine.now == 2.0


def test_schedule_in_the_past_rejected():
    engine = SimulationEngine()
    with pytest.raises(InvalidStateError):
        engine.schedule(-1.0, lambda: None)
    with pytest.raises(InvalidStateError):
        engine.schedule_at(-5.0, lambda: None)


def test_single_activity_duration():
    engine = SimulationEngine()
    r = Resource("disk", 10.0)
    activity = Activity("read", 100.0, {r: 1.0})

    def proc():
        yield activity

    engine.add_process(proc(), "p")
    engine.run()
    assert engine.now == pytest.approx(10.0)
    assert activity.state is ActivityState.DONE
    assert activity.duration() == pytest.approx(10.0)


def test_two_activities_share_resource_fairly():
    engine = SimulationEngine()
    r = Resource("link", 10.0)
    done = {}

    def proc(name, amount):
        yield Activity(name, amount, {r: 1.0})
        done[name] = engine.now

    engine.add_process(proc("small", 50.0), "a")
    engine.add_process(proc("large", 100.0), "b")
    engine.run()
    # Both progress at 5/s until the small one finishes at t=10; the large
    # one then gets the full 10/s for its remaining 50 units.
    assert done["small"] == pytest.approx(10.0)
    assert done["large"] == pytest.approx(15.0)


def test_latency_delays_fluid_phase():
    engine = SimulationEngine()
    r = Resource("link", 10.0)
    activity = Activity("comm", 100.0, {r: 1.0}, latency=2.5)

    def proc():
        yield activity

    engine.add_process(proc(), "p")
    engine.run()
    assert engine.now == pytest.approx(12.5)


def test_zero_amount_activity_completes_after_latency_only():
    engine = SimulationEngine()
    activity = Activity("noop", 0.0, {}, latency=1.0)

    def proc():
        yield activity

    engine.add_process(proc(), "p")
    engine.run()
    assert engine.now == pytest.approx(1.0)
    assert activity.is_done


def test_run_until_pauses_simulation():
    engine = SimulationEngine()
    r = Resource("cpu", 1.0)
    activity = Activity("work", 100.0, {r: 1.0})

    def proc():
        yield activity

    engine.add_process(proc(), "p")
    engine.run(until=30.0)
    assert engine.now == pytest.approx(30.0)
    assert not activity.is_done
    assert activity.remaining == pytest.approx(70.0)
    engine.run()
    assert engine.now == pytest.approx(100.0)
    assert activity.is_done


def test_cancel_activity_raises_in_waiting_process():
    engine = SimulationEngine()
    r = Resource("cpu", 1.0)
    activity = Activity("work", 100.0, {r: 1.0})
    observed = {}

    def proc():
        try:
            yield activity
        except Exception as exc:  # noqa: BLE001
            observed["error"] = type(exc).__name__

    engine.add_process(proc(), "p")
    engine.schedule(5.0, lambda: engine.cancel_activity(activity))
    engine.run()
    assert observed["error"] == "ActivityCanceledError"
    assert activity.is_canceled


def test_starting_an_activity_twice_is_rejected():
    engine = SimulationEngine()
    r = Resource("cpu", 1.0)
    activity = Activity("work", 1.0, {r: 1.0})
    engine.start_activity(activity)
    with pytest.raises(InvalidStateError):
        engine.start_activity(activity)


def test_process_failure_surfaces_as_simulation_error():
    engine = SimulationEngine()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("boom")

    engine.add_process(bad(), "bad")
    with pytest.raises(SimulationError, match="boom"):
        engine.run()


def test_deadlock_detection():
    """Two processes joining each other can never make progress."""

    def a(other_holder):
        yield other_holder["b"]

    def b(other_holder):
        yield other_holder["a"]

    holder = {}
    engine = SimulationEngine()
    holder["a"] = engine.add_process(a(holder), "a")
    holder["b"] = engine.add_process(b(holder), "b")
    with pytest.raises(DeadlockError):
        engine.run()


def test_event_and_sharing_counters_increase():
    engine = SimulationEngine()
    r = Resource("cpu", 10.0)

    def proc():
        yield Activity("one", 10.0, {r: 1.0})
        yield Activity("two", 10.0, {r: 1.0})

    engine.add_process(proc(), "p")
    engine.run()
    assert engine.completed_activity_count == 2
    assert engine.sharing_update_count >= 2


def test_resource_utilization_accounting():
    engine = SimulationEngine()
    r = Resource("cpu", 10.0)

    def proc():
        yield Activity("half", 50.0, {r: 1.0})

    engine.add_process(proc(), "p")
    engine.run()
    # The resource was fully used for 5 s; utilisation over 10 s is 50%.
    assert r.utilization(10.0) == pytest.approx(0.5, rel=1e-6)


def test_negative_amount_rejected():
    r = Resource("cpu", 1.0)
    with pytest.raises(InvalidStateError):
        Activity("bad", -1.0, {r: 1.0})


def test_platform_smoke_pipeline():
    """A short end-to-end pipeline on a Platform (read, compute, send)."""
    p = Platform("smoke")
    h1 = p.add_host("n1", speed=1e9, cores=2)
    h2 = p.add_host("remote", speed=1e9, cores=1)
    lan = p.add_link("lan", bandwidth=1e8, latency=0.0)
    p.add_route(h1, h2, [lan])
    d = p.add_disk(h1, "hdd", read_bandwidth=5e7)
    finished = {}

    def worker(i):
        yield from d.read(f"r{i}", 1e8)
        yield from h1.execute(f"c{i}", 2e9)
        yield p.transfer_async(f"t{i}", 1e8, h1, h2)
        finished[i] = p.engine.now

    for i in range(3):
        p.engine.add_process(worker(i), f"w{i}")
    p.engine.run()
    # 3 x 1e8 B at 5e7 B/s shared = 6 s; compute: 3 tasks on 2 cores of
    # 1e9 = 3 s; transfer: 3 x 1e8 at 1e8 shared = 3 s.
    assert all(t == pytest.approx(12.0, rel=1e-6) for t in finished.values())
