"""Simulated processes: timeouts, combinators, joins, composition."""

import pytest

from repro.simgrid import AllOf, AnyOf, SimulationEngine, Timeout
from repro.simgrid.activity import Activity
from repro.simgrid.errors import InvalidStateError, SimulationError
from repro.simgrid.resources import Resource


def test_timeout_advances_clock():
    engine = SimulationEngine()
    seen = {}

    def proc():
        yield Timeout(3.0)
        seen["t"] = engine.now

    engine.add_process(proc(), "p")
    engine.run()
    assert seen["t"] == pytest.approx(3.0)


def test_negative_timeout_rejected():
    with pytest.raises(InvalidStateError):
        Timeout(-1.0)


def test_yield_none_resumes_at_same_time():
    engine = SimulationEngine()
    times = []

    def proc():
        times.append(engine.now)
        yield None
        times.append(engine.now)

    engine.add_process(proc(), "p")
    engine.run()
    assert times == [0.0, 0.0]


def test_allof_waits_for_all_activities():
    engine = SimulationEngine()
    r1, r2 = Resource("r1", 10.0), Resource("r2", 10.0)
    end = {}

    def proc():
        a = Activity("short", 10.0, {r1: 1.0})
        b = Activity("long", 50.0, {r2: 1.0})
        yield AllOf([a, b])
        end["t"] = engine.now
        assert a.is_done and b.is_done

    engine.add_process(proc(), "p")
    engine.run()
    assert end["t"] == pytest.approx(5.0)


def test_allof_with_timeout_member():
    engine = SimulationEngine()
    r = Resource("r", 10.0)
    end = {}

    def proc():
        yield AllOf([Activity("a", 10.0, {r: 1.0}), Timeout(7.0)])
        end["t"] = engine.now

    engine.add_process(proc(), "p")
    engine.run()
    assert end["t"] == pytest.approx(7.0)


def test_allof_empty_completes_immediately():
    engine = SimulationEngine()
    end = {}

    def proc():
        yield AllOf([])
        end["t"] = engine.now

    engine.add_process(proc(), "p")
    engine.run()
    assert end["t"] == pytest.approx(0.0)


def test_anyof_returns_first_completion():
    engine = SimulationEngine()
    r1, r2 = Resource("r1", 10.0), Resource("r2", 10.0)
    seen = {}

    def proc():
        fast = Activity("fast", 10.0, {r1: 1.0})
        slow = Activity("slow", 100.0, {r2: 1.0})
        winner = yield AnyOf([fast, slow])
        seen["winner"] = winner.name
        seen["t"] = engine.now

    engine.add_process(proc(), "p")
    engine.run()
    assert seen["winner"] == "fast"
    assert seen["t"] == pytest.approx(1.0)


def test_process_join_returns_result():
    engine = SimulationEngine()
    results = {}

    def worker():
        yield Timeout(2.0)
        return 42

    def main():
        child = engine.add_process(worker(), "worker")
        finished = yield child
        results["value"] = finished.result
        results["t"] = engine.now

    engine.add_process(main(), "main")
    engine.run()
    assert results["value"] == 42
    assert results["t"] == pytest.approx(2.0)


def test_yield_from_subroutine_composition():
    engine = SimulationEngine()
    r = Resource("disk", 10.0)
    log = []

    def read(amount):
        yield Activity("read", amount, {r: 1.0})
        return amount

    def main():
        got = yield from read(50.0)
        log.append((got, engine.now))
        got = yield from read(20.0)
        log.append((got, engine.now))

    engine.add_process(main(), "main")
    engine.run()
    assert log == [(50.0, pytest.approx(5.0)), (20.0, pytest.approx(7.0))]


def test_yielding_garbage_fails_the_process():
    engine = SimulationEngine()

    def proc():
        yield "not a waitable"

    engine.add_process(proc(), "p")
    with pytest.raises(SimulationError):
        engine.run()


def test_many_concurrent_processes_complete():
    engine = SimulationEngine()
    r = Resource("cpu", 100.0)
    finished = []

    def proc(i):
        yield Activity(f"w{i}", 100.0, {r: 1.0})
        finished.append(i)

    for i in range(20):
        engine.add_process(proc(i), f"p{i}")
    engine.run()
    assert sorted(finished) == list(range(20))
    # 20 concurrent activities of 100 units on a 100-unit/s resource.
    assert engine.now == pytest.approx(20.0)


def test_process_result_without_return_is_none():
    engine = SimulationEngine()

    def proc():
        yield Timeout(1.0)

    process = engine.add_process(proc(), "p")
    engine.run()
    assert process.finished
    assert process.result is None
