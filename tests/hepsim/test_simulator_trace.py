"""The case-study simulator and execution traces."""

import pytest

from repro.hepsim.groundtruth import ReferenceSystemConfig
from repro.hepsim.platforms import CalibrationValues
from repro.hepsim.scenario import Scenario
from repro.hepsim.simulator import HEPSimulator
from repro.hepsim.trace import ExecutionTrace
from repro.hepsim.units import GBps, MBps, gbps, gflops
from repro.wrench.jobs import JobResult


def baseline_values(**overrides):
    values = {
        "core_speed": gflops(1.9),
        "disk_bandwidth": MBps(40),
        "lan_bandwidth": gbps(10),
        "wan_bandwidth": gbps(1),
        "page_cache_bandwidth": GBps(11),
    }
    values.update(overrides)
    return CalibrationValues(**values)


@pytest.fixture(scope="module")
def tiny_fcsn():
    return HEPSimulator(Scenario.tiny("FCSN"))


@pytest.fixture(scope="module")
def tiny_scsn():
    return HEPSimulator(Scenario.tiny("SCSN"))


class TestSimulatorBasics:
    def test_all_jobs_complete_on_expected_nodes(self, tiny_fcsn):
        results, stats = tiny_fcsn.simulate(baseline_values(), icd=0.5)
        assert len(results) == tiny_fcsn.scenario.workload.n_jobs
        assert {r.node_name for r in results} == set(tiny_fcsn.scenario.node_names)
        assert stats["events"] > 0
        assert stats["wall_time"] > 0
        assert stats["simulated_makespan"] > 0

    def test_simulation_is_deterministic(self, tiny_fcsn):
        first, _ = tiny_fcsn.simulate(baseline_values(), icd=0.5)
        second, _ = tiny_fcsn.simulate(baseline_values(), icd=0.5)
        assert [r.end_time for r in first] == [r.end_time for r in second]

    def test_icd_reduces_job_times_when_cache_is_fast(self, tiny_fcsn):
        trace = tiny_fcsn.run_trace(baseline_values(), icd_values=[0.0, 0.5, 1.0])
        times = [trace.average_job_time("node3", icd) for icd in (0.0, 0.5, 1.0)]
        assert times[0] > times[1] > times[2]

    def test_faster_wan_shortens_low_icd_jobs(self, tiny_fcsn):
        slow, _ = tiny_fcsn.simulate(baseline_values(wan_bandwidth=gbps(1)), icd=0.0)
        fast, _ = tiny_fcsn.simulate(baseline_values(wan_bandwidth=gbps(10)), icd=0.0)
        assert max(r.execution_time for r in fast) < max(r.execution_time for r in slow)

    def test_page_cache_bandwidth_matters_only_when_enabled(self, tiny_fcsn, tiny_scsn):
        # FCSN (page cache enabled): slower page cache => slower jobs at ICD 1.
        fast_pc, _ = tiny_fcsn.simulate(baseline_values(), icd=1.0)
        slow_pc, _ = tiny_fcsn.simulate(
            baseline_values(page_cache_bandwidth=GBps(0.2)), icd=1.0
        )
        assert max(r.execution_time for r in slow_pc) > max(r.execution_time for r in fast_pc)
        # SCSN (page cache disabled): the parameter is inert.
        a, _ = tiny_scsn.simulate(baseline_values(), icd=1.0)
        b, _ = tiny_scsn.simulate(baseline_values(page_cache_bandwidth=GBps(0.2)), icd=1.0)
        assert [r.end_time for r in a] == pytest.approx([r.end_time for r in b])

    def test_disk_bandwidth_matters_on_sc_platform(self, tiny_scsn):
        fast, _ = tiny_scsn.simulate(baseline_values(disk_bandwidth=MBps(200)), icd=1.0)
        slow, _ = tiny_scsn.simulate(baseline_values(disk_bandwidth=MBps(20)), icd=1.0)
        assert max(r.execution_time for r in slow) > max(r.execution_time for r in fast)

    def test_core_speed_bounds_high_icd_times(self, tiny_fcsn):
        fast, _ = tiny_fcsn.simulate(baseline_values(core_speed=gflops(4)), icd=1.0)
        slow, _ = tiny_fcsn.simulate(baseline_values(core_speed=gflops(0.5)), icd=1.0)
        assert max(r.execution_time for r in slow) > max(r.execution_time for r in fast)

    def test_finer_granularity_means_more_events(self):
        coarse = HEPSimulator(Scenario.tiny("FCSN").with_granularity(1e9, 5e8))
        fine = HEPSimulator(Scenario.tiny("FCSN").with_granularity(1e8, 2e7))
        _, coarse_stats = coarse.simulate(baseline_values(), icd=0.0)
        _, fine_stats = fine.simulate(baseline_values(), icd=0.0)
        assert fine_stats["events"] > 2 * coarse_stats["events"]

    def test_granularity_changes_cost_not_correctness(self):
        coarse = HEPSimulator(Scenario.tiny("FCSN").with_granularity(1e9, 5e8))
        fine = HEPSimulator(Scenario.tiny("FCSN").with_granularity(2e8, 5e7))
        coarse_results, _ = coarse.simulate(baseline_values(), icd=0.0)
        fine_results, _ = fine.simulate(baseline_values(), icd=0.0)
        coarse_avg = sum(r.execution_time for r in coarse_results) / len(coarse_results)
        fine_avg = sum(r.execution_time for r in fine_results) / len(fine_results)
        # Different pipelining granularity shifts times somewhat but not wildly.
        assert fine_avg == pytest.approx(coarse_avg, rel=0.35)

    def test_job_byte_accounting(self, tiny_fcsn):
        results, _ = tiny_fcsn.simulate(baseline_values(), icd=0.5)
        spec = tiny_fcsn.scenario.workload
        expected_total = spec.mean_input_bytes_per_job
        for result in results:
            assert result.bytes_from_cache + result.bytes_from_remote == pytest.approx(
                expected_total
            )
        all_cached, _ = tiny_fcsn.simulate(baseline_values(), icd=1.0)
        assert all(r.bytes_from_remote == 0 for r in all_cached)

    def test_run_trace_covers_requested_icds(self, tiny_fcsn):
        trace = tiny_fcsn.run_trace(baseline_values(), icd_values=[0.0, 1.0])
        assert trace.icd_values == [0.0, 1.0]
        assert trace.platform_name == "FCSN"


class TestExecutionTrace:
    def make_trace(self):
        trace = ExecutionTrace("FCSN", ["node1", "node2"])
        trace.add_run(
            0.0,
            [
                JobResult("a", "node1", 0, 0, 10),
                JobResult("b", "node2", 0, 0, 20),
            ],
            {"wall_time": 0.5, "events": 100},
        )
        trace.add_run(
            1.0,
            [
                JobResult("a", "node1", 0, 0, 4),
                JobResult("b", "node2", 0, 1, 5),
            ],
        )
        return trace

    def test_metrics_structure(self):
        trace = self.make_trace()
        metrics = trace.metrics()
        assert len(metrics) == 4
        assert metrics[("node1", 0.0)] == pytest.approx(10.0)
        assert metrics[("node2", 1.0)] == pytest.approx(4.0)

    def test_metrics_subsets_and_errors(self):
        trace = self.make_trace()
        subset = trace.metrics(nodes=["node1"], icds=[1.0])
        assert list(subset) == [("node1", 1.0)]
        with pytest.raises(KeyError):
            trace.metrics(icds=[0.7])
        with pytest.raises(KeyError):
            trace.metrics(nodes=["node9"])
        with pytest.raises(KeyError):
            trace.average_job_time("node9", 0.0)

    def test_makespan_and_quantiles(self):
        trace = self.make_trace()
        assert trace.makespan(0.0) == pytest.approx(20.0)
        assert trace.makespans()[1.0] == pytest.approx(5.0)
        q = trace.job_time_quantiles(0.0, [0.0, 1.0])
        assert q == [pytest.approx(10.0), pytest.approx(20.0)]
        with pytest.raises(ValueError):
            trace.job_time_quantiles(0.0, [1.5])

    def test_stats_and_wall_time(self):
        trace = self.make_trace()
        assert trace.stats(0.0)["events"] == 100
        assert trace.stats(1.0) == {}
        assert trace.total_simulation_wall_time() == pytest.approx(0.5)

    def test_json_roundtrip(self):
        trace = self.make_trace()
        restored = ExecutionTrace.from_json(trace.to_json())
        assert restored.platform_name == trace.platform_name
        assert restored.icd_values == trace.icd_values
        assert restored.metrics() == trace.metrics()
        assert restored.stats(0.0) == trace.stats(0.0)

    def test_empty_run_rejected(self):
        trace = ExecutionTrace("FCSN", ["node1"])
        with pytest.raises(ValueError):
            trace.add_run(0.0, [])
