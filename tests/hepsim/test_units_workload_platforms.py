"""Units, workload generation, platform configurations and scenarios."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hepsim import platforms as P
from repro.hepsim import units as U
from repro.hepsim.scenario import PAPER_ICD_VALUES, REDUCED_ICD_VALUES, Scenario
from repro.hepsim.workload import (
    Distribution,
    WorkloadSpec,
    bench_scale,
    cached_file_count,
    calib_scale,
    constant,
    make_workload,
    paper_scale,
    tiny_scale,
    unique_input_files,
)


class TestUnits:
    def test_bandwidth_conversions(self):
        assert U.gbps(1) == pytest.approx(1.25e8)
        assert U.mbps(8) == pytest.approx(1e6)
        assert U.MBps(1) == 1e6
        assert U.GBps(2) == 2e9

    def test_size_and_speed_conversions(self):
        assert U.megabytes(427) == 427e6
        assert U.gigabytes(1.5) == 1.5e9
        assert U.mflops(1970) == pytest.approx(1.97e9)
        assert U.gflops(1.9) == pytest.approx(1.9e9)

    def test_formatting(self):
        assert U.format_bandwidth(U.gbps(10)) == "10.00 Gbps"
        assert U.format_bandwidth(U.mbps(500)) == "500.0 Mbps"
        assert U.format_disk_bandwidth(U.MBps(17)) == "17.0 MBps"
        assert U.format_disk_bandwidth(U.GBps(1)) == "1.00 GBps"
        assert U.format_speed(U.mflops(1970)) == "1.97 Gflops"
        assert U.format_size(427e6) == "427.0 MB"
        assert U.format_duration(90) == "1.5 min"
        assert U.format_duration(0.03) == "30 ms"
        assert U.format_duration(7200) == "2.0 h"


class TestDistributions:
    def test_constant(self):
        d = constant(5.0)
        assert d.sample() == 5.0
        assert d.sample(np.random.default_rng(0)) == 5.0

    def test_uniform_and_lognormal_bounds(self):
        rng = np.random.default_rng(0)
        u = Distribution(value=0.0, kind="uniform", low=2.0, high=4.0)
        samples = [u.sample(rng) for _ in range(50)]
        assert all(2.0 <= s <= 4.0 for s in samples)
        ln = Distribution(value=10.0, kind="lognormal", sigma=0.2)
        samples = [ln.sample(rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Distribution(value=1.0, kind="cauchy").sample(np.random.default_rng(0))


class TestWorkload:
    def test_scales_have_expected_shapes(self):
        assert paper_scale().n_jobs == 48 and paper_scale().files_per_job == 20
        assert bench_scale().n_jobs == 12
        assert calib_scale().n_jobs == 8
        assert tiny_scale().n_jobs == 4

    def test_make_workload_structure(self):
        spec = tiny_scale()
        jobs = make_workload(spec)
        assert len(jobs) == spec.n_jobs
        for job in jobs:
            assert len(job.input_files) == spec.files_per_job
            assert job.output_file is not None
            assert job.flops_per_byte == spec.flops_per_byte.value
        assert len(unique_input_files(jobs)) == spec.n_jobs * spec.files_per_job

    def test_shared_input_files(self):
        spec = dataclasses.replace(tiny_scale(), shared_input_files=True)
        jobs = make_workload(spec)
        assert len(unique_input_files(jobs)) == spec.files_per_job
        assert spec.total_input_bytes == spec.mean_input_bytes_per_job

    def test_workload_is_deterministic_per_seed(self):
        spec = dataclasses.replace(
            tiny_scale(), file_size=Distribution(value=1e8, kind="lognormal", sigma=0.3)
        )
        first = make_workload(spec)
        second = make_workload(spec)
        assert [f.size for j in first for f in j.input_files] == [
            f.size for j in second for f in j.input_files
        ]

    def test_compute_seconds_per_job(self):
        spec = calib_scale()
        expected = spec.mean_input_bytes_per_job * spec.flops_per_byte.value / 2e9
        assert spec.compute_seconds_per_job(2e9) == pytest.approx(expected)

    def test_cached_file_count_bounds(self):
        assert cached_file_count(10, 0.0) == 0
        assert cached_file_count(10, 1.0) == 10
        assert cached_file_count(10, 0.5) == 5
        with pytest.raises(ValueError):
            cached_file_count(10, 1.5)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=50), st.floats(min_value=0.0, max_value=1.0))
    def test_cached_file_count_monotone_in_icd(self, files, icd):
        count = cached_file_count(files, icd)
        assert 0 <= count <= files
        assert cached_file_count(files, 1.0) >= count >= cached_file_count(files, 0.0)


class TestPlatformConfigs:
    def test_table2_configurations(self):
        assert set(P.PLATFORM_CONFIGS) == {"SCFN", "FCFN", "SCSN", "FCSN"}
        assert P.PLATFORM_CONFIGS["FCFN"].page_cache_enabled
        assert not P.PLATFORM_CONFIGS["SCSN"].page_cache_enabled
        assert P.PLATFORM_CONFIGS["SCFN"].wan_nominal_bandwidth == pytest.approx(U.gbps(10))
        assert P.PLATFORM_CONFIGS["FCSN"].wan_nominal_bandwidth == pytest.approx(U.gbps(1))
        assert "page cache" in P.PLATFORM_CONFIGS["FCFN"].description

    def test_node_presets_keep_1_1_2_shape(self):
        for nodes in (P.PAPER_NODES, P.BENCH_NODES, P.CALIB_NODES, P.TINY_NODES):
            cores = [n.cores for n in nodes]
            assert len(cores) == 3
            assert cores[0] == cores[1]
            assert cores[2] == 2 * cores[0]
        assert sum(n.cores for n in P.PAPER_NODES) == 48

    def test_calibration_values_roundtrip_and_describe(self):
        values = P.CalibrationValues(1.9e9, 3e7, 1.25e9, 1.15e8, 1.1e10)
        assert P.CalibrationValues.from_dict(values.to_dict()) == values
        text = values.describe()
        for token in ("core", "disk", "LAN", "WAN", "page cache"):
            assert token in text

    def test_build_platform_applies_values(self):
        config = P.PLATFORM_CONFIGS["FCSN"]
        values = P.CalibrationValues(2e9, 4e7, 1.25e9, 1.15e8, 1.2e10)
        built = P.build_platform(config, values, nodes=P.TINY_NODES)
        assert len(built.compute_hosts) == 3
        assert built.wan_link.bandwidth == pytest.approx(1.15e8)
        assert built.lan_link.bandwidth == pytest.approx(1.25e9)
        for host in built.compute_hosts:
            assert host.speed == pytest.approx(2e9)
        for disk in built.node_disks.values():
            assert disk.read_bandwidth == pytest.approx(4e7)
        for memory in built.node_memories.values():
            assert memory.bandwidth == pytest.approx(1.2e10)
        # Every compute host can reach the storage host.
        for host in built.compute_hosts:
            assert built.platform.has_route(host, built.storage_host)

    def test_platform_ascii_art_mentions_parameters(self):
        art = P.platform_ascii_art()
        assert "calibration parameters" in art
        assert "node3" in art


class TestScenario:
    def test_presets(self):
        assert Scenario.paper("SCFN").workload.n_jobs == 48
        assert Scenario.bench("FCFN").label == "bench"
        assert Scenario.calib("FCSN").total_cores == 8
        assert Scenario.tiny("SCSN").workload.files_per_job == 4
        assert len(PAPER_ICD_VALUES) == 11
        assert len(REDUCED_ICD_VALUES) == 5

    def test_metric_count_matches_paper(self):
        scenario = Scenario.paper("FCSN")
        assert scenario.metric_count == 33

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario.calib("NOPE")
        with pytest.raises(ValueError):
            Scenario.calib("FCSN", icd_values=(1.5,))
        with pytest.raises(ValueError):
            Scenario.calib("FCSN").with_granularity(-1.0, 1e6)

    def test_derivation_helpers(self):
        scenario = Scenario.calib("FCSN")
        subset = scenario.with_icds([0.0, 1.0])
        assert subset.icd_values == (0.0, 1.0)
        fine = scenario.with_granularity(1e8, 1e6)
        assert fine.block_size == 1e8
        other = scenario.with_platform("SCFN")
        assert other.platform_name == "SCFN"
        assert other.workload == scenario.workload

    def test_granularity_cost_model(self):
        scenario = Scenario.calib("FCSN")
        coarse = scenario.with_granularity(1e10, 1e9)
        fine = scenario.with_granularity(1e8, 1e6)
        assert fine.events_per_job_estimate() > coarse.events_per_job_estimate()

    def test_cache_key_distinguishes_platforms_and_scales(self):
        keys = {
            Scenario.calib("FCSN").cache_key(),
            Scenario.calib("SCFN").cache_key(),
            Scenario.tiny("FCSN").cache_key(),
        }
        assert len(keys) == 3
