"""The picklable case-study objective and the generalisation study."""

import pickle

import pytest

from repro.core import EvaluationBudget
from repro.hepsim import (
    CaseStudyObjective,
    CaseStudyProblem,
    GroundTruthGenerator,
    Scenario,
    generalization_study,
    with_compute_data_ratio,
)
from repro.hepsim.calibration import make_objective


@pytest.fixture(scope="module")
def generator():
    return GroundTruthGenerator(use_disk_cache=False)


@pytest.fixture(scope="module")
def tiny_problem(generator):
    scenario = Scenario.tiny("FCSN", icd_values=(0.0, 0.5, 1.0))
    return CaseStudyProblem.create(scenario, generator=generator)


class TestCaseStudyObjective:
    def test_make_objective_returns_the_picklable_class(self, tiny_problem):
        assert isinstance(tiny_problem.objective, CaseStudyObjective)
        objective = make_objective(tiny_problem.scenario, tiny_problem.ground_truth)
        assert isinstance(objective, CaseStudyObjective)

    def test_pickle_roundtrip_preserves_the_value(self, tiny_problem):
        values = tiny_problem.human_values().to_dict()
        direct = tiny_problem.objective(values)
        clone = pickle.loads(pickle.dumps(tiny_problem.objective))
        assert clone(values) == pytest.approx(direct, rel=1e-12)

    def test_true_values_score_low(self, tiny_problem):
        true_mre = tiny_problem.objective(tiny_problem.true_values().to_dict())
        human_mre = tiny_problem.objective(tiny_problem.human_values().to_dict())
        assert true_mre < human_mre

    def test_simulate_returns_a_trace_with_all_icds(self, tiny_problem):
        trace = tiny_problem.objective.simulate(tiny_problem.true_values().to_dict())
        assert set(trace.icd_values) == {0.0, 0.5, 1.0}

    def test_metric_name_is_recorded(self, generator):
        scenario = Scenario.tiny("SCSN", icd_values=(0.0, 1.0))
        ground_truth = generator.get(scenario)
        objective = CaseStudyObjective(scenario, ground_truth, metric="rmse")
        assert objective.metric_name == "rmse"


class TestWithComputeDataRatio:
    def test_scales_only_the_flops_per_byte(self):
        base = Scenario.tiny("FCSN")
        scaled = with_compute_data_ratio(base, 4.0)
        assert scaled.workload.flops_per_byte.value == pytest.approx(
            4.0 * base.workload.flops_per_byte.value
        )
        assert scaled.workload.n_jobs == base.workload.n_jobs
        assert scaled.workload.file_size.value == base.workload.file_size.value
        assert scaled.platform_name == base.platform_name

    def test_identity_factor_changes_nothing(self):
        base = Scenario.tiny("SCSN")
        assert with_compute_data_ratio(base, 1.0).workload == base.workload

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            with_compute_data_ratio(Scenario.tiny("FCSN"), 0.0)

    def test_changes_the_ground_truth_cache_key(self):
        base = Scenario.tiny("FCSN")
        assert with_compute_data_ratio(base, 2.0).cache_key() != base.cache_key()


class TestGeneralizationStudy:
    @pytest.fixture(scope="class")
    def study(self, generator):
        return generalization_study(
            platform="FCSN",
            factors=(0.5, 1.0, 2.0),
            algorithm="random",
            budget=EvaluationBudget(30),
            icd_values=(0.0, 0.5, 1.0),
            seed=2,
            generator=generator,
            scale="tiny",
        )

    def test_one_evaluation_per_factor(self, study):
        assert set(study.evaluations) == {0.5, 1.0, 2.0}
        assert study.base_factor == 1.0

    def test_true_values_stay_accurate_everywhere(self, study):
        for evaluation in study.evaluations.values():
            assert evaluation.true_values_mre < 10.0

    def test_summary_rows_are_sorted_by_factor(self, study):
        factors = [row[0] for row in study.summary_rows()]
        assert factors == sorted(factors)

    def test_worst_factor_has_the_largest_degradation(self, study):
        worst = study.worst_factor()
        degradations = {f: e.degradation for f, e in study.evaluations.items()}
        assert degradations[worst] == max(degradations.values())

    def test_calibration_result_is_kept(self, study):
        assert study.calibration.evaluations == 30
        assert set(study.calibrated_values.to_dict()) >= {"core_speed", "disk_bandwidth"}
