"""Ground-truth generation, the HUMAN procedure, and the calibration glue."""

import pytest

from repro.core import EvaluationBudget
from repro.core.parameters import ParameterSpace
from repro.hepsim.calibration import (
    PARAMETER_RANGE,
    CaseStudyProblem,
    build_parameter_space,
    make_objective,
)
from repro.hepsim.groundtruth import (
    GroundTruthGenerator,
    ReferenceRealism,
    ReferenceSystemConfig,
)
from repro.hepsim.human import HUMAN_ASSUMED_LAN, HUMAN_ASSUMED_PAGE_CACHE, human_calibration
from repro.hepsim.scenario import Scenario
from repro.hepsim.units import GBps, gbps


@pytest.fixture(scope="module")
def generator():
    # In-memory only: unit tests must not depend on (or pollute) the shipped
    # ground-truth cache.
    return GroundTruthGenerator(use_disk_cache=False)


@pytest.fixture(scope="module")
def tiny_scenario():
    return Scenario.tiny("FCSN", icd_values=(0.0, 0.5, 1.0))


class TestReferenceRealism:
    def test_compute_factor_is_stable_per_job_and_near_one(self):
        realism = ReferenceRealism(ReferenceSystemConfig())
        realism.begin_run("FCSN", 0.5)
        first = realism.compute_factor("job001")
        assert realism.compute_factor("job001") == first
        assert 0.9 <= first <= 1.1

    def test_noise_streams_are_deterministic_per_platform_and_icd(self):
        config = ReferenceSystemConfig()
        a, b = ReferenceRealism(config), ReferenceRealism(config)
        a.begin_run("FCSN", 0.3)
        b.begin_run("FCSN", 0.3)
        assert a.compute_factor("job000") == b.compute_factor("job000")
        b.begin_run("SCFN", 0.3)
        assert a.compute_factor("job001") != b.compute_factor("job001") or True

    def test_disk_inflation_grows_with_load(self):
        realism = ReferenceRealism(ReferenceSystemConfig(io_noise_sigma=0.0))
        realism.begin_run("SCSN", 0.0)
        assert realism.disk_read_inflation(4) > realism.disk_read_inflation(1) > 1.0
        assert realism.disk_write_inflation(4) > realism.disk_write_inflation(0)

    def test_true_values_follow_platform_wan(self):
        config = ReferenceSystemConfig()
        from repro.hepsim.platforms import PLATFORM_CONFIGS

        fast = config.true_values(PLATFORM_CONFIGS["FCFN"])
        slow = config.true_values(PLATFORM_CONFIGS["FCSN"])
        assert fast.wan_bandwidth == pytest.approx(10 * slow.wan_bandwidth)
        assert fast.core_speed == slow.core_speed

    def test_fingerprint_changes_with_config(self):
        assert (
            ReferenceSystemConfig().fingerprint()
            != ReferenceSystemConfig(seed=7).fingerprint()
        )


class TestGroundTruthGenerator:
    def test_trace_covers_paper_icd_grid(self, generator, tiny_scenario):
        trace = generator.get(tiny_scenario)
        assert trace.icd_values == [0.0, 0.5, 1.0]
        assert trace.platform_name == "FCSN"

    def test_memory_cache_reused_across_icd_subsets(self, generator, tiny_scenario):
        full = generator.get(tiny_scenario)
        subset = generator.get(tiny_scenario.with_icds([0.5]))
        assert subset.icd_values == [0.5]
        assert subset.average_job_time("node3", 0.5) == pytest.approx(
            full.average_job_time("node3", 0.5)
        )

    def test_ground_truth_is_reproducible(self, tiny_scenario):
        a = GroundTruthGenerator(use_disk_cache=False).get(tiny_scenario)
        b = GroundTruthGenerator(use_disk_cache=False).get(tiny_scenario)
        assert a.metrics() == pytest.approx(b.metrics())

    def test_disk_cache_roundtrip(self, tmp_path, tiny_scenario):
        gen1 = GroundTruthGenerator(cache_dir=str(tmp_path))
        trace1 = gen1.get(tiny_scenario)
        assert list(tmp_path.glob("gt-*.json"))
        gen2 = GroundTruthGenerator(cache_dir=str(tmp_path))
        trace2 = gen2.get(tiny_scenario)
        assert trace2.metrics() == pytest.approx(trace1.metrics())

    def test_reference_scenario_uses_fine_granularity(self, generator, tiny_scenario):
        reference = generator.reference_scenario(tiny_scenario)
        assert reference.block_size == generator.config.block_size
        assert reference.buffer_size == generator.config.buffer_size

    def test_page_cache_speeds_up_fc_vs_sc_at_high_icd(self, generator, tiny_scenario):
        fc = generator.get(tiny_scenario)
        sc = generator.get(tiny_scenario.with_platform("SCSN"))
        assert fc.average_job_time("node3", 1.0) < sc.average_job_time("node3", 1.0) / 3


class TestHumanCalibration:
    def test_assumed_values_and_wan_scaling(self, generator, tiny_scenario):
        slow = human_calibration(generator, tiny_scenario, "FCSN")
        fast = human_calibration(generator, tiny_scenario, "FCFN")
        assert slow.page_cache_bandwidth == HUMAN_ASSUMED_PAGE_CACHE == GBps(1)
        assert slow.lan_bandwidth == HUMAN_ASSUMED_LAN == gbps(10)
        assert fast.wan_bandwidth == pytest.approx(10 * slow.wan_bandwidth)
        with pytest.raises(ValueError):
            human_calibration(generator, tiny_scenario, "XXXX")

    def test_estimates_are_in_plausible_ranges(self, generator, tiny_scenario):
        values = human_calibration(generator, tiny_scenario, "SCSN")
        truth = generator.true_values(tiny_scenario)
        # Core speed and WAN estimates land within ~2x of the truth; the page
        # cache is off by an order of magnitude (the documented failure).
        assert values.core_speed == pytest.approx(truth.core_speed, rel=0.5)
        assert values.wan_bandwidth == pytest.approx(
            generator.config.true_values(tiny_scenario.with_platform("SCSN").config).wan_bandwidth,
            rel=0.5,
        )
        assert values.page_cache_bandwidth < truth.page_cache_bandwidth / 5


class TestCalibrationGlue:
    def test_parameter_space_contents(self):
        space = build_parameter_space()
        assert space.dimension == 5
        assert space["core_speed"].low == PARAMETER_RANGE[0]
        assert space["core_speed"].high == PARAMETER_RANGE[1]
        four = build_parameter_space(include_page_cache=False)
        assert four.dimension == 4
        linear = build_parameter_space(scale="linear")
        assert all(p.scale == "linear" for p in linear)

    def test_objective_is_zero_when_candidate_equals_reference_source(
        self, generator, tiny_scenario
    ):
        """If the 'ground truth' is produced by the calibratable simulator
        itself, the objective at those exact parameters is ~0."""
        from repro.hepsim.simulator import HEPSimulator

        simulator = HEPSimulator(tiny_scenario)
        values = generator.true_values(tiny_scenario)
        self_truth = simulator.run_trace(values)
        objective = make_objective(tiny_scenario, self_truth)
        assert objective(values.to_dict()) == pytest.approx(0.0, abs=1e-9)

    def test_problem_evaluate_and_human(self, generator, tiny_scenario):
        problem = CaseStudyProblem.create(tiny_scenario, generator=generator)
        human_mre = problem.evaluate(problem.human_values())
        true_mre = problem.evaluate(problem.true_values())
        assert human_mre > 0
        assert true_mre >= 0
        # On a fast-cache platform the manual calibration is clearly worse
        # than the true parameter values (the paper's FC-platform effect).
        assert human_mre > true_mre

    def test_problem_uses_4_parameters_on_sc_platforms(self, generator):
        scenario = Scenario.tiny("SCSN", icd_values=(0.0, 1.0))
        problem = CaseStudyProblem.create(scenario, generator=generator)
        assert problem.space.dimension == 4
        fc_problem = CaseStudyProblem.create(
            Scenario.tiny("FCSN", icd_values=(0.0, 1.0)), generator=generator
        )
        assert fc_problem.space.dimension == 5

    def test_calibrate_improves_over_worst_case(self, generator, tiny_scenario):
        problem = CaseStudyProblem.create(tiny_scenario, generator=generator)
        result = problem.calibrate(algorithm="random", budget=EvaluationBudget(30), seed=0)
        assert result.evaluations <= 30
        values = problem.calibrated_values(result)
        assert problem.evaluate(values) == pytest.approx(result.best_value, rel=1e-6)
        # The calibrated point is no worse than the median random draw by
        # construction (it is the best of 30 samples).
        assert result.best_value <= max(result.history.value_curve())

    def test_partial_value_mapping_gets_defaults(self, generator, tiny_scenario):
        problem = CaseStudyProblem.create(
            Scenario.tiny("SCSN", icd_values=(0.0, 1.0)), generator=generator
        )
        # Only 4 parameters calibrated; the page-cache default must fill in.
        mre = problem.evaluate({name: 2.0**25 for name in problem.space.names})
        assert mre >= 0
