"""The XRootD-style redirector (federated replica location and reads)."""

import pytest

from repro.simgrid import Platform, SimulationError
from repro.wrench import DataFile, FileRegistry, ProxyCacheService, Redirector, SimpleStorageService


def build_federation():
    """A client site plus two storage sites: one nearby (fast), one far (slow)."""
    platform = Platform("federation")
    client_host = platform.add_host("client", 1e9, cores=2)
    near_host = platform.add_host("near", 1e9, cores=2)
    far_host = platform.add_host("far", 1e9, cores=2)

    client_disk = platform.add_disk(client_host, "client_disk", 2e8)
    near_disk = platform.add_disk(near_host, "near_disk", 2e8)
    far_disk = platform.add_disk(far_host, "far_disk", 2e8)

    lan = platform.add_link("lan", 1e9, latency=0.001)
    wan1 = platform.add_link("wan1", 1e8, latency=0.02)
    wan2 = platform.add_link("wan2", 1e7, latency=0.05)
    platform.add_route(client_host, near_host, [lan])
    platform.add_route(client_host, far_host, [wan1, wan2])

    registry = FileRegistry()
    client_storage = SimpleStorageService("client_storage", client_host, client_disk,
                                          buffer_size=10e6, registry=registry)
    near = SimpleStorageService("near_storage", near_host, near_disk,
                                buffer_size=10e6, registry=registry)
    far = SimpleStorageService("far_storage", far_host, far_disk,
                               buffer_size=10e6, registry=registry)
    redirector = Redirector("redirector", platform, registry=registry)
    redirector.register_endpoint(near)
    redirector.register_endpoint(far)
    redirector.register_endpoint(client_storage)
    return platform, redirector, client_storage, near, far


def run(platform, generator):
    outcome = {}

    def process():
        outcome["served_by"] = yield from generator
    platform.engine.add_process(process(), "client")
    platform.engine.run()
    return outcome.get("served_by")


class TestReplicaSelection:
    def test_prefers_local_replica(self):
        platform, redirector, client_storage, near, far = build_federation()
        file = DataFile("data", 1e8)
        for storage in (client_storage, near, far):
            storage.add_file(file)
        ranked = redirector.locate(file, client_storage.host)
        assert ranked[0] is client_storage

    def test_hops_policy_prefers_the_near_site(self):
        platform, redirector, client_storage, near, far = build_federation()
        file = DataFile("data", 1e8)
        near.add_file(file)
        far.add_file(file)
        ranked = redirector.locate(file, client_storage.host, policy="hops")
        assert ranked[0] is near

    def test_bandwidth_policy_ranks_by_route_bottleneck(self):
        platform, redirector, client_storage, near, far = build_federation()
        file = DataFile("data", 1e8)
        near.add_file(file)
        far.add_file(file)
        ranked = redirector.locate(file, client_storage.host, policy="bandwidth")
        assert [e.name for e in ranked] == ["near_storage", "far_storage"]

    def test_registry_lookup_finds_unregistered_holders(self):
        platform, redirector, client_storage, near, far = build_federation()
        extra_host = platform.add_host("extra", 1e9)
        extra_disk = platform.add_disk(extra_host, "extra_disk", 1e8)
        platform.add_route(client_storage.host, extra_host, [platform.links["lan"]])
        extra = SimpleStorageService("extra_storage", extra_host, extra_disk,
                                     registry=redirector.registry)
        file = DataFile("only-on-extra", 1e7)
        extra.add_file(file)  # never register_endpoint'ed, found via the registry
        ranked = redirector.locate(file, client_storage.host)
        assert [e.name for e in ranked] == ["extra_storage"]

    def test_unknown_policy_rejected(self):
        platform, redirector, client_storage, *_ = build_federation()
        with pytest.raises(SimulationError):
            redirector.locate(DataFile("x", 1.0), client_storage.host, policy="astrology")
        with pytest.raises(SimulationError):
            Redirector("bad", platform, policy="astrology")


class TestFederatedReads:
    def test_local_read_counts_as_local(self):
        platform, redirector, client_storage, near, far = build_federation()
        file = DataFile("data", 1e8)
        client_storage.add_file(file)
        served = run(platform, redirector.read_file(file, client_storage))
        assert served is client_storage
        assert redirector.local_reads == 1 and redirector.remote_reads == 0

    def test_remote_read_streams_from_the_selected_site(self):
        platform, redirector, client_storage, near, far = build_federation()
        file = DataFile("data", 2e8)
        near.add_file(file)
        served = run(platform, redirector.read_file(file, client_storage))
        assert served is near
        assert redirector.remote_reads == 1
        assert platform.engine.now > 0.0

    def test_remote_read_through_a_proxy_populates_the_cache(self):
        platform, redirector, client_storage, near, far = build_federation()
        proxy_disk = platform.add_disk(client_storage.host, "proxy_disk", 2e8)
        file = DataFile("data", 1e8)
        near.add_file(file)
        proxy = ProxyCacheService("proxy", client_storage.host, proxy_disk, near, capacity=5e8)
        served = run(platform, redirector.read_file(file, client_storage, proxy=proxy))
        assert served is near
        assert proxy.has_file(file)
        assert proxy.misses == 1

    def test_missing_file_raises_and_is_counted(self):
        platform, redirector, client_storage, *_ = build_federation()
        missing = DataFile("missing", 1e6)

        def process():
            yield from redirector.read_file(missing, client_storage)

        platform.engine.add_process(process(), "client")
        with pytest.raises(SimulationError, match="no endpoint"):
            platform.engine.run()
        assert redirector.failed_lookups == 1

    def test_statistics_summary(self):
        platform, redirector, client_storage, near, far = build_federation()
        file_local, file_remote = DataFile("l", 1e7), DataFile("r", 1e7)
        client_storage.add_file(file_local)
        near.add_file(file_remote)

        def process():
            yield from redirector.read_file(file_local, client_storage)
            yield from redirector.read_file(file_remote, client_storage)

        platform.engine.add_process(process(), "client")
        platform.engine.run()
        stats = redirector.statistics()
        assert stats["local_reads"] == 1 and stats["remote_reads"] == 1
        assert stats["local_fraction"] == pytest.approx(0.5)
        assert stats["endpoints"] == 3
