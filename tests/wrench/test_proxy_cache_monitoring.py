"""XRootD-style proxy cache service and the service monitor."""

import pytest

from repro.simgrid import Platform, SimulationError
from repro.wrench import DataFile, FileRegistry, ProxyCacheService, ServiceMonitor, SimpleStorageService


def build_cache_platform(capacity=None, buffer_size=10e6):
    platform = Platform("cache")
    storage_host = platform.add_host("storage", 1e9, cores=2)
    edge_host = platform.add_host("edge", 1e9, cores=2)
    origin_disk = platform.add_disk(storage_host, "origin_disk", 2e8)
    proxy_disk = platform.add_disk(edge_host, "proxy_disk", 2e8)
    wan = platform.add_link("wan", 1e8, latency=0.0)
    platform.add_route(storage_host, edge_host, [wan])
    registry = FileRegistry()
    origin = SimpleStorageService("origin", storage_host, origin_disk,
                                  buffer_size=buffer_size, registry=registry)
    proxy = ProxyCacheService("proxy", edge_host, proxy_disk, origin, capacity=capacity,
                              buffer_size=buffer_size, registry=registry)
    return platform, origin, proxy


def run_fetches(platform, proxy, files):
    outcomes = []

    def client():
        for file in files:
            hit = yield from proxy.fetch_file(file, platform)
            outcomes.append(hit)

    platform.engine.add_process(client(), "client")
    platform.engine.run()
    return outcomes


class TestProxyCacheService:
    def test_miss_then_hit(self):
        platform, origin, proxy = build_cache_platform(capacity=None)
        file = DataFile("data", 1e8)
        origin.add_file(file)
        outcomes = run_fetches(platform, proxy, [file, file])
        assert outcomes == [False, True]
        assert proxy.hits == 1 and proxy.misses == 1
        assert proxy.hit_rate == pytest.approx(0.5)
        assert proxy.has_file(file)

    def test_hit_is_faster_than_miss(self):
        file = DataFile("data", 2e8)

        platform_miss, origin_miss, proxy_miss = build_cache_platform()
        origin_miss.add_file(file)
        run_fetches(platform_miss, proxy_miss, [file])
        miss_time = platform_miss.engine.now

        platform_hit, origin_hit, proxy_hit = build_cache_platform()
        origin_hit.add_file(file)
        proxy_hit.add_file(file)  # pre-populated cache
        run_fetches(platform_hit, proxy_hit, [file])
        hit_time = platform_hit.engine.now

        assert hit_time < miss_time

    def test_lru_eviction_under_capacity_pressure(self):
        platform, origin, proxy = build_cache_platform(capacity=2.5e8)
        files = [DataFile(f"f{i}", 1e8) for i in range(4)]
        for file in files:
            origin.add_file(file)
        # Access f0, f1, f2 (evicts f0), then f0 again (miss) and f2 (hit).
        outcomes = run_fetches(platform, proxy, [files[0], files[1], files[2], files[0], files[2]])
        assert outcomes == [False, False, False, False, True]
        assert proxy.evictions >= 1
        assert proxy.cached_bytes <= 2.5e8

    def test_recently_used_files_survive_eviction(self):
        platform, origin, proxy = build_cache_platform(capacity=2.5e8)
        a, b, c = (DataFile(name, 1e8) for name in ("a", "b", "c"))
        for file in (a, b, c):
            origin.add_file(file)
        # a, b cached; touching a makes b the LRU victim when c arrives.
        run_fetches(platform, proxy, [a, b, a, c])
        assert proxy.has_file(a)
        assert proxy.has_file(c)
        assert not proxy.has_file(b)

    def test_oversized_files_bypass_the_cache(self):
        platform, origin, proxy = build_cache_platform(capacity=1e8)
        big = DataFile("big", 5e8)
        origin.add_file(big)
        outcomes = run_fetches(platform, proxy, [big, big])
        assert outcomes == [False, False]  # never cached, so never a hit
        assert proxy.bypasses >= 1
        assert not proxy.has_file(big)

    def test_missing_origin_file_raises(self):
        platform, _, proxy = build_cache_platform()
        orphan = DataFile("orphan", 1e6)

        def client():
            yield from proxy.fetch_file(orphan, platform)

        platform.engine.add_process(client(), "client")
        with pytest.raises(SimulationError, match="does not hold"):
            platform.engine.run()

    def test_statistics_keys(self):
        _, _, proxy = build_cache_platform()
        stats = proxy.statistics()
        assert set(stats) == {"hits", "misses", "evictions", "bypasses", "hit_rate", "cached_bytes"}
        assert stats["hit_rate"] == 0.0

    def test_capacity_validation(self):
        platform, origin, _ = build_cache_platform()
        with pytest.raises(SimulationError):
            ProxyCacheService("bad", origin.host, origin.disk, origin, capacity=0)

    def test_delete_file_clears_lru_entry(self):
        platform, origin, proxy = build_cache_platform(capacity=3e8)
        file = DataFile("data", 1e8)
        origin.add_file(file)
        run_fetches(platform, proxy, [file])
        proxy.delete_file(file)
        assert not proxy.has_file(file)
        assert proxy.cached_bytes == 0.0


class TestServiceMonitor:
    def test_counters_accumulate(self):
        monitor = ServiceMonitor()
        monitor.increment("reads")
        monitor.increment("reads", 2)
        monitor.add("bytes", 1e6)
        assert monitor.counter("reads") == 3
        assert monitor.counter("bytes") == 1e6
        assert monitor.counter("never-set") == 0.0

    def test_observations_statistics(self):
        monitor = ServiceMonitor()
        for value in (1.0, 2.0, 3.0, 4.0):
            monitor.observe("latency", value)
        stats = monitor.statistics("latency")
        assert stats["count"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert monitor.statistics("unknown")["count"] == 0.0

    def test_events_filtering(self):
        monitor = ServiceMonitor()
        monitor.record_event("job_start", 1.0, job="j1")
        monitor.record_event("job_end", 5.0, job="j1")
        monitor.record_event("job_start", 2.0, job="j2")
        assert len(monitor.events()) == 3
        starts = monitor.events("job_start")
        assert len(starts) == 2
        assert starts[0].attributes["job"] == "j1"

    def test_merge_combines_everything(self):
        a, b = ServiceMonitor(), ServiceMonitor()
        a.increment("x", 1)
        b.increment("x", 2)
        b.observe("t", 3.0)
        b.record_event("e", 1.0)
        a.merge(b)
        assert a.counter("x") == 3
        assert a.statistics("t")["count"] == 1
        assert len(a.events("e")) == 1

    def test_summary_and_reset(self):
        monitor = ServiceMonitor()
        monitor.increment("jobs", 5)
        monitor.observe("wait", 2.0)
        monitor.record_event("done", 1.0)
        summary = monitor.summary()
        assert summary["jobs"] == 5
        assert summary["wait_mean"] == 2.0
        assert summary["event_count"] == 1
        monitor.reset()
        assert monitor.summary()["event_count"] == 0
