"""Storage services: local I/O, pipelined streaming, page cache."""

import math

import pytest

from repro.simgrid import Platform
from repro.simgrid.errors import SimulationError
from repro.wrench.files import DataFile, FileRegistry
from repro.wrench.storage import PageCache, SimpleStorageService


def build_site(buffer_size=1e6, link_bw=1e8, disk_bw=5e7):
    """Two hosts connected by one link, each with a disk-backed storage."""
    p = Platform("site")
    a = p.add_host("a", 1e9)
    b = p.add_host("b", 1e9)
    link = p.add_link("ab", link_bw, latency=0.0)
    p.add_route(a, b, [link])
    da = p.add_disk(a, "da", disk_bw)
    db = p.add_disk(b, "db", disk_bw)
    registry = FileRegistry()
    sa = SimpleStorageService("sa", a, da, buffer_size, registry)
    sb = SimpleStorageService("sb", b, db, buffer_size, registry)
    return p, sa, sb


class TestLocalIO:
    def test_read_whole_file_duration(self):
        p, sa, _ = build_site()
        f = DataFile("f", 5e7)
        sa.add_file(f)
        done = {}

        def proc():
            got = yield from sa.read_file(f)
            done["bytes"] = got
            done["t"] = p.engine.now

        p.engine.add_process(proc(), "p")
        p.engine.run()
        assert done["bytes"] == 5e7
        assert done["t"] == pytest.approx(1.0)

    def test_read_missing_file_raises(self):
        _, sa, _ = build_site()
        with pytest.raises(SimulationError):
            list(sa.read_file(DataFile("missing", 10)))

    def test_write_registers_file(self):
        p, sa, _ = build_site()
        f = DataFile("out", 5e7)

        def proc():
            yield from sa.write_file(f)

        p.engine.add_process(proc(), "p")
        p.engine.run()
        assert sa.has_file(f)
        assert sa.stored_bytes == 5e7

    def test_zero_amount_io_is_free(self):
        p, sa, _ = build_site()

        def proc():
            got = yield from sa.read_amount("zero", 0.0)
            assert got == 0.0

        p.engine.add_process(proc(), "p")
        p.engine.run()
        assert p.engine.now == 0.0

    def test_positive_buffer_required(self):
        p = Platform("p")
        h = p.add_host("h", 1e9)
        d = p.add_disk(h, "d", 1e8)
        with pytest.raises(SimulationError):
            SimpleStorageService("s", h, d, buffer_size=0.0)


class TestChunking:
    def test_chunk_sizes_cover_amount(self):
        _, sa, sb = build_site(buffer_size=3e6)
        chunks = list(sa.chunk_sizes(1e7, sb.buffer_size))
        assert sum(chunks) == pytest.approx(1e7)
        assert max(chunks) <= 3e6 + 1e-6
        assert len(chunks) == math.ceil(1e7 / 3e6)

    def test_chunk_size_uses_smaller_peer_buffer(self):
        _, sa, sb = build_site(buffer_size=4e6)
        chunks = list(sa.chunk_sizes(8e6, other_buffer=2e6))
        assert len(chunks) == 4
        assert all(c == pytest.approx(2e6) for c in chunks)


class TestStreaming:
    def test_stream_file_duration_bounded_by_bottleneck(self):
        # Disk 5e7 B/s is the bottleneck (link is 1e8); a 1e8-byte file takes
        # at least 2 s and, with chunked pipelining, not much more.
        p, sa, sb = build_site(buffer_size=1e7)
        f = DataFile("f", 1e8)
        sa.add_file(f)

        def proc():
            chunks = yield from sa.stream_file_to(sb, f, p)
            assert chunks == 10

        p.engine.add_process(proc(), "p")
        p.engine.run()
        assert p.engine.now >= 2.0 - 1e-9
        assert p.engine.now <= 2.5

    def test_stream_registers_file_at_destination(self):
        p, sa, sb = build_site()
        f = DataFile("f", 1e7)
        sa.add_file(f)

        def proc():
            yield from sa.stream_file_to(sb, f, p)

        p.engine.add_process(proc(), "p")
        p.engine.run()
        assert sb.has_file(f)

    def test_stream_missing_file_raises(self):
        p, sa, sb = build_site()
        with pytest.raises(SimulationError):
            list(sa.stream_file_to(sb, DataFile("nope", 10), p))

    def test_finer_buffer_means_more_chunks_and_events(self):
        durations = {}
        events = {}
        for buffer_size in (1e7, 2e6):
            p, sa, sb = build_site(buffer_size=buffer_size)
            f = DataFile("f", 1e8)
            sa.add_file(f)

            def proc():
                yield from sa.stream_file_to(sb, f, p)

            p.engine.add_process(proc(), "p")
            p.engine.run()
            durations[buffer_size] = p.engine.now
            events[buffer_size] = p.engine.completed_activity_count
        # Event count scales with s/b; durations stay close (pipelining).
        assert events[2e6] > events[1e7]
        assert durations[2e6] == pytest.approx(durations[1e7], rel=0.2)


class TestPageCache:
    def test_page_cache_reads_at_memory_bandwidth(self):
        p = Platform("p")
        h = p.add_host("h", 1e9)
        mem = p.add_memory(h, "ram", 1e9)
        cache = PageCache("pc", h, mem)
        f = DataFile("f", 1e9)
        cache.add_file(f)

        def proc():
            yield from cache.read_file(f)

        p.engine.add_process(proc(), "p")
        p.engine.run()
        assert p.engine.now == pytest.approx(1.0)

    def test_page_cache_disabled_flag_is_informational(self):
        p = Platform("p")
        h = p.add_host("h", 1e9)
        mem = p.add_memory(h, "ram", 1e9)
        cache = PageCache("pc", h, mem, enabled=False)
        assert cache.enabled is False
