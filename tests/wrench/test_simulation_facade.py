"""The Simulation facade: wiring services, staging data, running workloads."""

import pytest

from repro.simgrid import Platform
from repro.wrench import DataFile, JobSpec, Simulation
from repro.wrench.jobs import average_execution_time, group_by_node, makespan


def build_simulation():
    """Two compute nodes reading from a remote storage host over one link."""
    platform = Platform("facade")
    storage_host = platform.add_host("storage", 1e9, cores=2)
    node1 = platform.add_host("node1", 1e9, cores=2)
    node2 = platform.add_host("node2", 1e9, cores=4)
    remote_disk = platform.add_disk(storage_host, "remote_disk", 2e8)
    local1 = platform.add_disk(node1, "node1_disk", 2e8)
    ram1 = platform.add_memory(node1, "node1_ram", 5e9)
    wan = platform.add_link("wan", 1.25e8, latency=0.001)
    platform.add_route(node1, storage_host, [wan])
    platform.add_route(node2, storage_host, [wan])

    simulation = Simulation(platform)
    remote = simulation.add_storage_service("remote", storage_host, remote_disk, buffer_size=10e6)
    simulation.add_storage_service("node1_cache", node1, local1, buffer_size=10e6)
    simulation.add_page_cache("node1_pc", node1, ram1)
    simulation.add_compute_service("cs1", node1)
    simulation.add_compute_service("cs2", node2)
    return platform, simulation, remote


def make_specs(count, file_size=5e7, flops_per_byte=2.0):
    return [
        JobSpec(
            name=f"job{i:02d}",
            input_files=(DataFile(f"in{i:02d}", file_size),),
            flops_per_byte=flops_per_byte,
            output_file=DataFile(f"out{i:02d}", 1e6),
        )
        for i in range(count)
    ]


def body_factory_for(simulation, remote):
    """Jobs stream their input from the remote service, then compute."""

    def factory(job):
        def body(job_obj, host):
            for file in job_obj.spec.input_files:
                yield from remote.read_file(file)
                job_obj.bytes_from_remote += file.size
            yield host.exec_async(f"{job_obj.name}:compute", job_obj.spec.total_flops)

        return body

    return factory


class TestSimulationFacade:
    def test_end_to_end_workload_execution(self):
        platform, simulation, remote = build_simulation()
        specs = make_specs(6)
        for spec in specs:
            for file in spec.input_files:
                simulation.stage_file(file, "remote")

        jobs = simulation.submit_workload(specs, body_factory_for(simulation, remote))
        final_time = simulation.run()

        assert len(jobs) == 6
        results = simulation.job_results()
        assert len(results) == 6
        assert final_time > 0
        assert simulation.event_count > 0
        # Every job read its input remotely and finished after it started.
        for result in results:
            assert result.end_time >= result.start_time >= result.submit_time
            assert result.bytes_from_remote == pytest.approx(5e7)

    def test_scheduler_balances_by_free_cores(self):
        platform, simulation, remote = build_simulation()
        specs = make_specs(6)
        for spec in specs:
            for file in spec.input_files:
                simulation.stage_file(file, "remote")
        simulation.submit_workload(specs, body_factory_for(simulation, remote))
        simulation.run()

        by_node = group_by_node(simulation.job_results())
        # node2 has twice the cores of node1, so it receives more jobs.
        assert len(by_node["node2"]) == 4
        assert len(by_node["node1"]) == 2

    def test_registry_tracks_staged_files(self):
        platform, simulation, remote = build_simulation()
        file = DataFile("staged", 1e7)
        simulation.stage_file(file, "remote")
        assert simulation.registry.holds(file, remote)

    def test_job_result_aggregations(self):
        platform, simulation, remote = build_simulation()
        specs = make_specs(4)
        for spec in specs:
            for file in spec.input_files:
                simulation.stage_file(file, "remote")
        simulation.submit_workload(specs, body_factory_for(simulation, remote))
        simulation.run()
        results = simulation.job_results()
        assert average_execution_time(results) > 0
        assert makespan(results) == pytest.approx(
            max(r.end_time for r in results) - min(r.start_time for r in results)
        )

    def test_run_until_stops_the_clock(self):
        platform, simulation, remote = build_simulation()
        specs = make_specs(2, file_size=5e8)  # long jobs
        for spec in specs:
            for file in spec.input_files:
                simulation.stage_file(file, "remote")
        simulation.submit_workload(specs, body_factory_for(simulation, remote))
        stopped_at = simulation.run(until=0.5)
        assert stopped_at == pytest.approx(0.5)
        assert simulation.job_results() == []  # nothing finished yet
