"""Bare-metal compute service, FCFS scheduler and the simulation facade."""

import pytest

from repro.simgrid import Platform, Timeout
from repro.simgrid.errors import SimulationError
from repro.wrench.compute import BareMetalComputeService
from repro.wrench.files import DataFile
from repro.wrench.jobs import Job, JobSpec
from repro.wrench.scheduler import FCFSScheduler
from repro.wrench.simulation import Simulation


def make_host(cores=2, speed=1e9):
    p = Platform("p")
    h = p.add_host("node", speed, cores)
    return p, h


def compute_body(flops):
    def body(job, host):
        yield host.exec_async(f"{job.name}:work", flops)

    return body


class TestComputeService:
    def test_jobs_run_concurrently_up_to_core_count(self):
        p, h = make_host(cores=2)
        service = BareMetalComputeService("cs", h)
        for i in range(2):
            service.submit(Job(JobSpec(f"j{i}", (), 1.0)), compute_body(1e9))
        p.engine.run()
        jobs = service.completed_jobs
        assert len(jobs) == 2
        assert all(j.execution_time == pytest.approx(1.0) for j in jobs)
        assert all(j.wait_time == pytest.approx(0.0) for j in jobs)

    def test_excess_jobs_queue_for_a_core(self):
        p, h = make_host(cores=1)
        service = BareMetalComputeService("cs", h)
        for i in range(3):
            service.submit(Job(JobSpec(f"j{i}", (), 1.0)), compute_body(1e9))
        p.engine.run()
        ends = sorted(j.end_time for j in service.completed_jobs)
        assert ends == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]
        assert service.free_cores == 1
        assert service.running_jobs == 0

    def test_job_records_node_and_submit_time(self):
        p, h = make_host()
        service = BareMetalComputeService("cs", h)
        job = Job(JobSpec("j", (), 1.0))
        service.submit(job, compute_body(1e9))
        p.engine.run()
        assert job.node_name == "node"
        assert job.submit_time == 0.0

    def test_failing_job_body_fails_the_simulation(self):
        p, h = make_host()
        service = BareMetalComputeService("cs", h)

        def bad_body(job, host):
            yield Timeout(0.5)
            raise ValueError("broken job")

        service.submit(Job(JobSpec("bad", (), 1.0)), bad_body)
        with pytest.raises(SimulationError):
            p.engine.run()


class TestScheduler:
    def test_requires_services(self):
        with pytest.raises(SimulationError):
            FCFSScheduler([])

    def test_greedy_balanced_placement(self):
        p = Platform("p")
        hosts = [
            p.add_host("node1", 1e9, 2),
            p.add_host("node2", 1e9, 2),
            p.add_host("node3", 1e9, 4),
        ]
        services = [BareMetalComputeService(f"cs{i}", h) for i, h in enumerate(hosts)]
        scheduler = FCFSScheduler(services)
        specs = [JobSpec(f"j{i}", (), 1.0) for i in range(8)]
        scheduler.submit_all(specs, lambda job: compute_body(1e9))
        placement = scheduler.placement()
        assert placement == {"node1": 2, "node2": 2, "node3": 4}
        assert scheduler.total_cores == 8
        p.engine.run()
        # Every job had its own core.
        assert all(j.wait_time == pytest.approx(0.0) for j in scheduler.jobs)


class TestSimulationFacade:
    def test_end_to_end_with_facade(self):
        platform = Platform("facade")
        node = platform.add_host("node", 1e9, 2)
        remote = platform.add_host("remote", 1e9, 1)
        link = platform.add_link("wan", 1e8, 0.0)
        platform.add_route(node, remote, [link])
        disk = platform.add_disk(node, "hdd", 1e8)
        remote_disk = platform.add_disk(remote, "rdisk", 1e9)

        sim = Simulation(platform)
        local = sim.add_storage_service("local", node, disk, buffer_size=1e7)
        origin = sim.add_storage_service("origin", remote, remote_disk, buffer_size=1e7)
        sim.add_compute_service("cs", node)
        sim.create_scheduler()

        f = DataFile("input", 1e8)
        sim.stage_file(f, "origin")
        assert origin.has_file(f)

        def body_factory(job):
            def body(job_obj, host):
                yield from origin.stream_file_to(local, f, platform, register=False)
                yield host.exec_async("work", 1e9)

            return body

        specs = [JobSpec(f"j{i}", (f,), 1.0) for i in range(2)]
        sim.submit_workload(specs, body_factory)
        final_time = sim.run()
        results = sim.job_results()
        assert len(results) == 2
        assert final_time > 0
        assert sim.event_count > 0
        assert {r.node_name for r in results} == {"node"}

    def test_page_cache_creation(self):
        platform = Platform("pc")
        node = platform.add_host("node", 1e9, 1)
        memory = platform.add_memory(node, "ram", 1e10)
        sim = Simulation(platform)
        cache = sim.add_page_cache("pc", node, memory, enabled=True)
        assert cache.enabled
        assert sim.page_caches["pc"] is cache
