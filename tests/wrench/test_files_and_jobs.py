"""Data files, the file registry, and job bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgrid import Platform
from repro.simgrid.errors import SimulationError
from repro.wrench.files import DataFile, FileRegistry
from repro.wrench.jobs import (
    Job,
    JobResult,
    JobSpec,
    average_execution_time,
    group_by_node,
    makespan,
)
from repro.wrench.storage import SimpleStorageService


def make_storage(name="ss"):
    p = Platform("p")
    h = p.add_host("h", 1e9)
    d = p.add_disk(h, f"{name}_disk", 1e8)
    return SimpleStorageService(name, h, d, registry=FileRegistry())


class TestDataFile:
    def test_equality_is_by_name(self):
        assert DataFile("a", 10) == DataFile("a", 20)
        assert DataFile("a", 10) != DataFile("b", 10)

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            DataFile("bad", -1.0)

    def test_usable_in_sets(self):
        files = {DataFile("a", 1), DataFile("a", 2), DataFile("b", 1)}
        assert len(files) == 2


class TestFileRegistry:
    def test_add_lookup_remove(self):
        registry = FileRegistry()
        storage = make_storage()
        f = DataFile("f", 100)
        registry.add_entry(f, storage)
        assert registry.lookup(f) == [storage]
        assert registry.holds(f, storage)
        registry.remove_entry(f, storage)
        assert registry.lookup(f) == []
        assert len(registry) == 0

    def test_multiple_holders_sorted_by_name(self):
        registry = FileRegistry()
        s1, s2 = make_storage("a"), make_storage("b")
        f = DataFile("f", 100)
        registry.add_entry(f, s2)
        registry.add_entry(f, s1)
        assert [s.name for s in registry.lookup(f)] == ["a", "b"]

    def test_storage_service_updates_registry(self):
        storage = make_storage()
        f = DataFile("f", 100)
        storage.add_file(f)
        assert storage.registry.holds(f, storage)
        storage.delete_file(f)
        assert not storage.registry.holds(f, storage)


class TestJobSpec:
    def test_volumes(self):
        files = (DataFile("a", 100.0), DataFile("b", 300.0))
        spec = JobSpec("j", files, flops_per_byte=2.0, flops_baseline=50.0)
        assert spec.input_bytes == 400.0
        assert spec.total_flops == pytest.approx(850.0)

    def test_with_name(self):
        spec = JobSpec("j", (), flops_per_byte=1.0)
        assert spec.with_name("k").name == "k"


class TestJobResults:
    def test_execution_and_wait_time(self):
        job = Job(JobSpec("j", (), 1.0))
        job.submit_time, job.start_time, job.end_time = 0.0, 2.0, 10.0
        assert job.execution_time == pytest.approx(8.0)
        assert job.wait_time == pytest.approx(2.0)

    def test_incomplete_job_raises(self):
        job = Job(JobSpec("j", (), 1.0))
        with pytest.raises(ValueError):
            _ = job.execution_time

    def test_result_roundtrip(self):
        result = JobResult("j", "node1", 0.0, 1.0, 5.0, 10.0, 20.0)
        assert JobResult.from_dict(result.to_dict()) == result
        assert result.execution_time == pytest.approx(4.0)
        assert result.turnaround_time == pytest.approx(5.0)

    def test_group_and_aggregate(self):
        results = [
            JobResult("a", "n1", 0, 0, 10),
            JobResult("b", "n1", 0, 2, 6),
            JobResult("c", "n2", 0, 1, 5),
        ]
        grouped = group_by_node(results)
        assert set(grouped) == {"n1", "n2"}
        assert average_execution_time(grouped["n1"]) == pytest.approx(7.0)
        assert makespan(results) == pytest.approx(10.0)

    def test_empty_aggregates_raise(self):
        with pytest.raises(ValueError):
            average_execution_time([])
        with pytest.raises(ValueError):
            makespan([])

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3),
                st.floats(min_value=0, max_value=1e3),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_makespan_bounds_every_execution_time(self, intervals):
        results = [
            JobResult(f"j{i}", "n", 0.0, start, start + dur)
            for i, (start, dur) in enumerate(intervals)
        ]
        span = makespan(results)
        assert span >= max(r.execution_time for r in results) - 1e-9
        assert span <= (
            max(r.end_time for r in results) - min(r.start_time for r in results) + 1e-9
        )
