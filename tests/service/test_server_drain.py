"""Regression tests: drain()/shutdown() survive a worker dying mid-job.

An objective can raise past ``except Exception`` (``SystemExit``,
``KeyboardInterrupt`` forwarded from a signal handler, interpreter
teardown).  Before the fix, the worker thread died with the job's done
event unset: ``drain()`` (whose timeout was also per-job, not global)
and any ``job.wait()`` hung forever, and jobs still queued behind the
dead worker were stranded silently.
"""

import time

import pytest

from repro.core import EvaluationBudget, Parameter, ParameterSpace
from repro.service import CalibrationRequest, CalibrationServer, InMemoryStore, JobStatus

# The killed worker threads re-raise on purpose; pytest reports each one.
pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


def make_space():
    return ParameterSpace([Parameter("x", 1.0, 16.0)])


def make_request(fn, fingerprint, evaluations=10):
    return CalibrationRequest(
        space=make_space(),
        objective=fn,
        fingerprint=fingerprint,
        algorithm="random",
        budget=EvaluationBudget(evaluations),
        seed=3,
    )


def lethal(values):
    raise SystemExit(3)  # escapes the job's `except Exception` handler


def quadratic(values):
    return (values["x"] - 4.0) ** 2


def join_pool(server, timeout=10.0):
    for thread in server._workers:
        thread.join(timeout)


class TestWorkerDeath:
    def test_job_whose_worker_dies_is_failed_and_released(self):
        server = CalibrationServer(store=InMemoryStore(), workers=1)
        job = server.submit(make_request(lethal, "fp-lethal"))
        assert job.wait(10), "a dying worker must still release the job"
        assert job.status is JobStatus.FAILED
        assert "died" in job.error
        assert server.drain(timeout=10) is True

    def test_drain_returns_false_once_the_pool_is_dead(self):
        server = CalibrationServer(store=InMemoryStore(), workers=1)
        server.submit(make_request(lethal, "fp-lethal"))
        stranded = server.submit(make_request(quadratic, "fp-q"))
        join_pool(server)
        started = time.monotonic()
        # No timeout at all: only the dead-pool detection can end this.
        assert server.drain() is False
        assert time.monotonic() - started < 5.0
        assert not stranded.finished

    def test_shutdown_fails_jobs_stranded_behind_a_dead_pool(self):
        server = CalibrationServer(store=InMemoryStore(), workers=1)
        server.submit(make_request(lethal, "fp-lethal"))
        stranded = server.submit(make_request(quadratic, "fp-q"))
        server.shutdown(wait=True)
        assert stranded.wait(0)
        assert stranded.status is JobStatus.FAILED
        assert "pool died" in stranded.error

    def test_drain_timeout_is_a_global_deadline(self):
        release = []

        def slow(values):
            while not release:
                time.sleep(0.01)
            return quadratic(values)

        server = CalibrationServer(store=InMemoryStore(), workers=1, dedupe_in_flight=False)
        jobs = [
            server.submit(make_request(slow, f"fp-slow-{i}", evaluations=2))
            for i in range(4)
        ]
        started = time.monotonic()
        assert server.drain(timeout=0.5) is False
        # The old implementation granted each job the full timeout in turn.
        assert time.monotonic() - started < 2.0
        release.append(True)
        assert server.drain(timeout=30) is True
        assert all(job.status is JobStatus.DONE for job in jobs)
        server.shutdown(wait=True)
