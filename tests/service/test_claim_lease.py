"""The claim/lease single-flight protocol of the evaluation store.

These are the states of the evaluation lifecycle documented in
docs/architecture.md: hit / claimed / leased, lease expiry and takeover,
release on failure, and the cross-process lease table of the SQLite
backend.
"""

import time

import pytest

from repro.core.evaluation import Claim
from repro.service import InMemoryStore, SqliteStore, StoreBackedCache
from repro.service.store import StoreClaim

POINT = {"x": 4.0, "y": 8.0}
OTHER = {"x": 5.0, "y": 9.0}


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        with InMemoryStore() as s:
            yield s
    else:
        with SqliteStore(tmp_path / "store.db") as s:
            yield s


class TestStoreClaims:
    def test_fresh_point_is_claimed(self, store):
        outcome = store.claim("fp", POINT, owner="a")
        assert outcome.status == StoreClaim.CLAIMED
        assert store.lease_count() == 1

    def test_stored_point_is_a_hit_and_needs_no_lease(self, store):
        store.put("fp", POINT, 42.0)
        outcome = store.claim("fp", POINT, owner="a")
        assert outcome.status == StoreClaim.HIT
        assert outcome.value == 42.0
        assert store.lease_count() == 0

    def test_claimed_point_is_leased_to_other_owners(self, store):
        store.claim("fp", POINT, owner="a", ttl=30.0)
        outcome = store.claim("fp", POINT, owner="b")
        assert outcome.status == StoreClaim.LEASED
        assert outcome.owner == "a"
        assert outcome.expires_at > time.time()

    def test_reclaiming_ones_own_point_renews_the_lease(self, store):
        store.claim("fp", POINT, owner="a", ttl=30.0)
        outcome = store.claim("fp", POINT, owner="a")
        assert outcome.status == StoreClaim.CLAIMED
        assert store.lease_count() == 1

    def test_put_finishes_the_claim(self, store):
        store.claim("fp", POINT, owner="a")
        store.put("fp", POINT, 7.0)
        assert store.lease_count() == 0
        outcome = store.claim("fp", POINT, owner="b")
        assert outcome.status == StoreClaim.HIT and outcome.value == 7.0

    def test_release_lets_the_next_owner_take_over(self, store):
        store.claim("fp", POINT, owner="a")
        store.release("fp", POINT, owner="a")
        assert store.claim("fp", POINT, owner="b").status == StoreClaim.CLAIMED

    def test_release_by_a_non_owner_is_a_no_op(self, store):
        store.claim("fp", POINT, owner="a", ttl=30.0)
        store.release("fp", POINT, owner="b")
        assert store.claim("fp", POINT, owner="b").status == StoreClaim.LEASED

    def test_expired_lease_is_taken_over(self, store):
        store.claim("fp", POINT, owner="a", ttl=0.01)
        time.sleep(0.02)
        outcome = store.claim("fp", POINT, owner="b")
        assert outcome.status == StoreClaim.CLAIMED

    def test_leases_are_per_point(self, store):
        store.claim("fp", POINT, owner="a")
        assert store.claim("fp", OTHER, owner="b").status == StoreClaim.CLAIMED

    def test_peek_does_not_claim_or_count(self, store):
        assert store.peek("fp", POINT) is None
        before = store.stats()
        store.put("fp", POINT, 3.0)
        assert store.peek("fp", POINT) == 3.0
        after = store.stats()
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]
        assert store.lease_count() == 0


class TestCrossProcessLeases:
    def test_sqlite_lease_is_visible_to_a_second_connection(self, tmp_path):
        """Two SqliteStore instances over one file model two server
        processes: a lease written by one is honoured by the other."""
        path = tmp_path / "store.db"
        with SqliteStore(path) as first, SqliteStore(path) as second:
            assert first.claim("fp", POINT, owner="a", ttl=30.0).status == StoreClaim.CLAIMED
            outcome = second.claim("fp", POINT, owner="b")
            assert outcome.status == StoreClaim.LEASED
            first.put("fp", POINT, 1.5)
            resolved = second.claim("fp", POINT, owner="b")
            assert resolved.status == StoreClaim.HIT and resolved.value == 1.5

    def test_in_memory_leases_die_with_the_store(self):
        """The in-memory backend scopes leases to one process by design."""
        a, b = InMemoryStore(), InMemoryStore()
        a.claim("fp", POINT, owner="a")
        assert b.claim("fp", POINT, owner="b").status == StoreClaim.CLAIMED

    def test_racing_connections_grant_exactly_one_claim(self, tmp_path):
        """The SQLite acquire must be atomic at the database level: two
        connections (modelling two processes — each store instance has its
        own in-process lock, so the lock protects nothing between them)
        racing on the same fresh point must elect exactly one leader."""
        import threading

        path = tmp_path / "store.db"
        with SqliteStore(path) as first, SqliteStore(path) as second:
            for round_index in range(20):
                point = {"x": float(round_index)}
                barrier = threading.Barrier(2)
                outcomes = {}

                def contend(name, store):
                    barrier.wait()
                    outcomes[name] = store.claim("fp", point, owner=name, ttl=30.0)

                threads = [
                    threading.Thread(target=contend, args=("a", first)),
                    threading.Thread(target=contend, args=("b", second)),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                statuses = sorted(o.status for o in outcomes.values())
                assert statuses == [StoreClaim.CLAIMED, StoreClaim.LEASED], outcomes

    def test_stale_release_cannot_drop_a_taken_over_lease(self, tmp_path):
        """An owner whose lease expired and was taken over must not be able
        to release the new owner's lease (atomic owner-guarded delete)."""
        path = tmp_path / "store.db"
        with SqliteStore(path) as store:
            store.claim("fp", POINT, owner="a", ttl=0.01)
            time.sleep(0.02)
            assert store.claim("fp", POINT, owner="b", ttl=30.0).status == StoreClaim.CLAIMED
            store.release("fp", POINT, owner="a")  # stale: must be a no-op
            assert store.claim("fp", POINT, owner="c").status == StoreClaim.LEASED


class TestStoreBackedCacheClaims:
    def test_cache_claim_maps_store_outcomes(self):
        store = InMemoryStore()
        leader = StoreBackedCache(store, "fp")
        follower = StoreBackedCache(store, "fp")
        assert leader.claim((), POINT).status == Claim.CLAIMED
        outcome = follower.claim((), POINT)
        assert outcome.status == Claim.LEASED
        assert follower.poll((), POINT) is None
        leader.put((), POINT, 9.0)
        assert follower.poll((), POINT) == 9.0
        assert follower.claim((), POINT) == Claim(Claim.HIT, 9.0)

    def test_cancel_releases_the_lease(self):
        store = InMemoryStore()
        leader = StoreBackedCache(store, "fp")
        follower = StoreBackedCache(store, "fp")
        leader.claim((), POINT)
        leader.cancel((), POINT)
        assert follower.claim((), POINT).status == Claim.CLAIMED

    def test_non_deduping_cache_never_leases(self):
        store = InMemoryStore()
        a = StoreBackedCache(store, "fp", dedupe_in_flight=False)
        b = StoreBackedCache(store, "fp", dedupe_in_flight=False)
        assert a.claim((), POINT).status == Claim.CLAIMED
        assert b.claim((), POINT).status == Claim.CLAIMED

    def test_serial_get_waits_for_the_leader(self):
        """The serial Objective path still shares in-flight work: a get()
        on a leased point returns the leader's published value."""
        import threading

        store = InMemoryStore()
        leader = StoreBackedCache(store, "fp")
        follower = StoreBackedCache(store, "fp")
        assert leader.get((), POINT) is None  # leader claims
        seen = {}

        def wait_for_value():
            seen["value"] = follower.get((), POINT)

        thread = threading.Thread(target=wait_for_value)
        thread.start()
        time.sleep(0.01)
        leader.put((), POINT, 4.5)
        thread.join(timeout=5.0)
        assert seen["value"] == 4.5
        assert follower.waited >= 1

    def test_get_takes_over_an_expired_lease(self):
        store = InMemoryStore()
        dead = StoreBackedCache(store, "fp", lease_ttl=0.02)
        live = StoreBackedCache(store, "fp", lease_ttl=0.02)
        assert dead.get((), POINT) is None  # claims, never publishes
        assert live.get((), POINT) is None  # waits out the TTL, takes over
        live.put((), POINT, 2.0)
        assert live.get((), POINT) == 2.0
