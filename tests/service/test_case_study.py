"""The case-study bridge: spec -> request, problem caching, fingerprints."""

import pytest

from repro.core.budget import EvaluationBudget, TimeBudget
from repro.hepsim.groundtruth import GroundTruthGenerator
from repro.service import CaseStudyRequestFactory, spec_budget


@pytest.fixture(scope="module")
def factory():
    return CaseStudyRequestFactory(generator=GroundTruthGenerator(use_disk_cache=False))


class TestSpecBudget:
    def test_defaults_to_100_evaluations(self):
        budget = spec_budget({})
        assert isinstance(budget, EvaluationBudget)
        assert budget.max_evaluations == 100

    def test_seconds_wins_over_evaluations(self):
        budget = spec_budget({"seconds": 2.5, "evaluations": 50})
        assert isinstance(budget, TimeBudget)
        assert budget.seconds == 2.5


class TestRequestFactory:
    def test_problem_is_cached_per_scenario(self, factory):
        a = factory.problem("FCSN", "tiny", icds=(0.0, 1.0))
        b = factory.problem("FCSN", "tiny", icds=(0.0, 1.0))
        assert a is b

    def test_same_length_icd_grids_are_distinct(self, factory):
        # Scenario.cache_key() encodes only the ICD *count*; the factory
        # must still keep same-length grids apart (objective AND store
        # fingerprint), or the second job would be calibrated against the
        # first job's grid.
        a = factory.problem("FCSN", "tiny", icds=(0.0, 0.5))
        b = factory.problem("FCSN", "tiny", icds=(0.5, 1.0))
        assert a is not b
        assert tuple(a.scenario.icd_values) == (0.0, 0.5)
        assert tuple(b.scenario.icd_values) == (0.5, 1.0)
        assert a.fingerprint() != b.fingerprint()

    def test_metrics_are_distinct(self, factory):
        a = factory.problem("FCSN", "tiny", icds=(0.0, 1.0), metric="mre")
        b = factory.problem("FCSN", "tiny", icds=(0.0, 1.0), metric="rmse")
        assert a is not b
        assert a.fingerprint() != b.fingerprint()

    def test_request_carries_spec_metadata(self, factory):
        request = factory.request({
            "platform": "FCSN", "scale": "tiny", "icds": [0.0, 1.0],
            "algorithm": "lhs", "metric": "mre", "evaluations": 7, "seed": 4,
        })
        assert request.algorithm == "lhs"
        assert request.seed == 4
        assert isinstance(request.budget, EvaluationBudget)
        assert request.budget.max_evaluations == 7
        assert request.metadata["platform"] == "FCSN"
        assert request.fingerprint.startswith("hepsim-")

    def test_unknown_scale_is_rejected(self, factory):
        with pytest.raises(ValueError, match="scenario scale"):
            factory.problem("FCSN", "galaxy")
