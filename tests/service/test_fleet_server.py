"""The in-process fleet: server + HTTP front-end + worker over one store.

Everything here runs in one process (workers as threads) so the tests are
fast and deterministic; the cross-process story — real subprocesses dying
mid-lease — lives in ``tests/integration/test_fleet.py``.
"""

import json
import threading

import pytest

from repro.core import Calibrator, EvaluationBudget, Parameter, ParameterSpace
from repro.service import CalibrationRequest, InMemoryStore, JobStatus
from repro.service.fleet import (
    FleetClient,
    FleetClientError,
    FleetFrontend,
    FleetServer,
    FleetWorker,
)


def make_space():
    return ParameterSpace([Parameter("x", 1.0, 16.0), Parameter("y", 1.0, 16.0)])


def quadratic(values):
    return (values["x"] - 4.0) ** 2 + (values["y"] - 9.0) ** 2


def forbidden(values):
    raise AssertionError("a fleet job must evaluate on workers, not the server")


def make_request(space, fn=forbidden, algorithm="random", evaluations=20, seed=7,
                 fingerprint="fp-fleet"):
    return CalibrationRequest(
        space=space,
        objective=fn,
        fingerprint=fingerprint,
        algorithm=algorithm,
        budget=EvaluationBudget(evaluations),
        seed=seed,
    )


def run_worker_thread(client, store, calls=None, **kwargs):
    """A fleet worker as a daemon thread with a local quadratic resolver."""

    def objective(values):
        if calls is not None:
            calls.append(dict(values))
        return quadratic(values)

    worker = FleetWorker(
        client, store, resolver=lambda spec: objective, poll=0.1, **kwargs
    )
    thread = threading.Thread(target=worker.run, kwargs={"max_idle": 2.0}, daemon=True)
    thread.start()
    return worker, thread


@pytest.fixture()
def fleet():
    store = InMemoryStore()
    server = FleetServer(store=store, workers=1, max_pending=3, poll_interval=0.1)
    frontend = FleetFrontend(server, port=0).start()
    client = FleetClient(frontend.url, timeout=10.0)
    try:
        yield store, server, frontend, client
    finally:
        frontend.close()
        server.shutdown(wait=False)


class TestFleetCalibration:
    def test_fleet_run_is_byte_identical_to_serial(self, fleet):
        store, server, frontend, client = fleet
        space = make_space()
        serial = Calibrator(
            space, quadratic, algorithm="random", budget=EvaluationBudget(20), seed=7
        ).run()

        calls = []
        worker, thread = run_worker_thread(client, store, calls=calls)
        job = server.submit(make_request(space))
        assert job.wait(60)
        thread.join(timeout=30)

        assert job.status is JobStatus.DONE
        assert job.result.best_value == serial.best_value
        assert json.dumps(job.result.best_values, sort_keys=True) == json.dumps(
            serial.best_values, sort_keys=True
        )
        fleet_points = [(e.unit, e.value) for e in job.result.history]
        serial_points = [(e.unit, e.value) for e in serial.history]
        assert fleet_points == serial_points

        # Zero duplicate simulator invocations: every evaluation ran exactly
        # once, on the worker, and landed in the shared store.
        assert len(calls) == 20
        assert len(store) == 20
        assert worker.stats["evaluations"] == 20
        assert worker.stats["publishes"] == 20

    def test_two_worker_threads_split_the_work_without_duplicates(self, fleet):
        store, server, frontend, client = fleet
        space = make_space()
        calls = []
        w1, t1 = run_worker_thread(client, store, calls=calls)
        w2, t2 = run_worker_thread(client, store, calls=calls)
        job = server.submit(make_request(space, evaluations=30))
        assert job.wait(60)
        t1.join(timeout=30)
        t2.join(timeout=30)
        assert job.status is JobStatus.DONE
        assert len(calls) == 30, "no point may be evaluated twice"
        assert w1.stats["evaluations"] + w2.stats["evaluations"] == 30

    def test_warm_store_serves_a_repeat_job_without_workers(self, fleet):
        store, server, frontend, client = fleet
        space = make_space()
        _, thread = run_worker_thread(client, store)
        cold = server.submit(make_request(space))
        assert cold.wait(60)
        thread.join(timeout=30)
        # The warm job replays entirely from the store: no worker running.
        warm = server.submit(make_request(space))
        assert warm.wait(60)
        assert warm.status is JobStatus.DONE
        assert warm.cache_hits == 20 and warm.evaluations == 0
        assert warm.result.best_value == cold.result.best_value

    def test_worker_failure_fails_the_job_loudly(self, fleet):
        store, server, frontend, client = fleet
        space = make_space()

        def broken(values):
            raise ValueError("simulator exploded")

        worker = FleetWorker(client, store, resolver=lambda spec: broken, poll=0.1)
        thread = threading.Thread(target=worker.run, kwargs={"max_idle": 2.0}, daemon=True)
        thread.start()
        job = server.submit(make_request(space))
        assert job.wait(60)
        thread.join(timeout=30)
        assert job.status is JobStatus.FAILED
        assert "simulator exploded" in (job.error or "")
        assert worker.stats["failures"] >= 1
        # The broken evaluation's lease was released, not left to expire.
        assert store.lease_count() == 0

    def test_store_poller_resolves_a_put_without_a_publish(self, fleet):
        """A worker that stores its result but dies before the HTTP publish
        still completes the job: the server's store poller backstops it."""
        store, server, frontend, client = fleet
        space = make_space()

        def put_only():
            seen = set()
            while True:
                tasks = client.tasks(wait=0.5)
                for task in tasks:
                    if task["id"] in seen:
                        continue
                    seen.add(task["id"])
                    values = {k: float(v) for k, v in task["values"].items()}
                    store.put(task["fingerprint"], values, quadratic(values))
                    # ...and "die" before client.publish: no HTTP round-trip.
                if done.is_set():
                    return

        done = threading.Event()
        thread = threading.Thread(target=put_only, daemon=True)
        thread.start()
        try:
            job = server.submit(make_request(space, evaluations=10))
            assert job.wait(60), "the poller should resolve put-only results"
            assert job.status is JobStatus.DONE
        finally:
            done.set()
            thread.join(timeout=10)


class TestFrontendEndpoints:
    def test_health_and_job_endpoints(self, fleet):
        store, server, frontend, client = fleet
        space = make_space()
        health = client.health()
        assert health["status"] == "ok" and health["jobs"] == 0

        _, thread = run_worker_thread(client, store)
        job = server.submit(make_request(space, evaluations=5))
        assert job.wait(60)
        thread.join(timeout=30)

        record = client.job(job.id)
        assert record["status"] == "done"
        assert record["evaluations"] == 5
        assert any(r["id"] == job.id for r in client.jobs())

        result = client.result(job.id)
        assert result["best_value"] == job.result.best_value
        assert len(result["history"]) == 5

        events = client.events(job.id)
        kinds = [e["kind"] for e in events]
        assert "submitted" in kinds and "finished" in kinds
        later = client.events(job.id, since=events[-1]["seq"])
        assert len(later) == 1

    def test_unknown_job_is_a_clean_404(self, fleet):
        _, _, _, client = fleet
        with pytest.raises(FleetClientError, match="404"):
            client.job("job-nope")

    def test_result_before_done_is_409(self, fleet):
        store, server, frontend, client = fleet
        space = make_space()
        job = server.submit(make_request(space, evaluations=5))  # no worker running
        try:
            with pytest.raises(FleetClientError, match="409"):
                client.result(job.id)
        finally:
            server.board.withdraw_job(job.id)

    def test_submit_without_handler_is_503(self, fleet):
        _, _, _, client = fleet
        with pytest.raises(FleetClientError, match="503"):
            client.submit({"algorithm": "random"})

    def test_submit_handler_round_trip(self):
        store = InMemoryStore()
        server = FleetServer(store=store, workers=1)
        submitted = []

        def accept(spec):
            submitted.append(spec)
            return f"job-{len(submitted):04d}"

        with FleetFrontend(server, port=0, submit=accept) as frontend:
            client = FleetClient(frontend.url, timeout=10.0)
            job_id = client.submit({"algorithm": "random", "evaluations": 3})
            assert job_id == "job-0001"
            assert submitted == [{"algorithm": "random", "evaluations": 3}]
        server.shutdown(wait=False)

    def test_unknown_endpoint_is_404_and_bad_json_is_400(self, fleet):
        _, _, frontend, client = fleet
        with pytest.raises(FleetClientError, match="404"):
            client._request("/api/nonsense")
        import urllib.request

        request = urllib.request.Request(
            f"{frontend.url}/api/tasks/task-000001/publish",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400


class TestWorkerProtocol:
    def test_lease_held_elsewhere_is_skipped_not_stolen(self, fleet):
        store, server, frontend, client = fleet
        # Some other worker holds a live lease on the only open point.
        values = {"x": 2.0, "y": 3.0}
        store.claim("fp-fleet", values, owner="other-worker", ttl=60.0)
        server.board.post("job-x", "fp-fleet", values, {})
        worker = FleetWorker(client, store, resolver=lambda spec: quadratic, poll=0.1)
        (task,) = client.tasks()
        assert worker.handle_task(task) is False
        assert worker.stats["lease_skips"] == 1
        assert worker.stats["evaluations"] == 0

    def test_stored_point_is_relayed_not_recomputed(self, fleet):
        store, server, frontend, client = fleet
        values = {"x": 2.0, "y": 3.0}
        store.put("fp-fleet", values, 42.0)
        future = server.board.post("job-x", "fp-fleet", values, {})
        worker = FleetWorker(client, store, resolver=lambda spec: forbidden, poll=0.1)
        (task,) = client.tasks()
        assert worker.handle_task(task) is True
        assert worker.stats["store_hits"] == 1
        assert worker.stats["evaluations"] == 0
        assert future.result(timeout=1)[0] == 42.0

    def test_losing_the_publish_race_is_benign(self, fleet):
        store, server, frontend, client = fleet
        values = {"x": 2.0, "y": 3.0}
        server.board.post("job-x", "fp-fleet", values, {})
        (task,) = client.tasks()
        assert client.publish(task["id"], 1.0) is True
        # The loser of a takeover race publishes into the void: HTTP 200,
        # resolved=false, nobody crashes.
        assert client.publish(task["id"], 2.0) is False
