"""The calibration server: scheduling, shared-store reuse, dedup, events."""

import json
import threading
import time

import pytest

from repro.core import Calibrator, EvaluationBudget, Parameter, ParameterSpace
from repro.service import (
    CalibrationRequest,
    CalibrationServer,
    InMemoryStore,
    JobStatus,
    StoreBackedCache,
)


def make_space():
    return ParameterSpace([Parameter("x", 1.0, 16.0), Parameter("y", 1.0, 16.0)])


def quadratic(values):
    return (values["x"] - 4.0) ** 2 + (values["y"] - 9.0) ** 2


def make_request(space, fn=quadratic, algorithm="random", evaluations=25, seed=7,
                 fingerprint="fp-quadratic"):
    return CalibrationRequest(
        space=space,
        objective=fn,
        fingerprint=fingerprint,
        algorithm=algorithm,
        budget=EvaluationBudget(evaluations),
        seed=seed,
    )


class TestSequentialJobs:
    def test_second_identical_job_is_served_from_the_store(self):
        space = make_space()
        calls = []

        def fn(values):
            calls.append(values)
            return quadratic(values)

        with CalibrationServer(store=InMemoryStore(), workers=1) as server:
            first = server.submit(make_request(space, fn))
            assert first.wait(60)
            second = server.submit(make_request(space, fn))
            assert second.wait(60)

        assert first.status is JobStatus.DONE
        assert first.evaluations == 25 and first.cache_hits == 0
        # The warm job re-pays for nothing...
        assert second.evaluations == 0 and second.cache_hits == 25
        assert len(calls) == 25
        # ...and reproduces the cold job's result exactly.
        assert second.result.best_value == first.result.best_value
        assert second.result.best_values == first.result.best_values

    def test_warm_job_matches_a_plain_calibrator_byte_for_byte(self):
        space = make_space()
        plain = Calibrator(
            space, quadratic, algorithm="random", budget=EvaluationBudget(25), seed=7
        ).run()
        with CalibrationServer(store=InMemoryStore(), workers=1) as server:
            cold = server.submit(make_request(space))
            warm = server.submit(make_request(space))
            assert cold.wait(60) and warm.wait(60)
        for job in (cold, warm):
            assert json.dumps(job.result.best_values, sort_keys=True) == json.dumps(
                plain.best_values, sort_keys=True
            )
            assert job.result.best_value == plain.best_value

    def test_different_seeds_still_profit_from_shared_points(self):
        # Grid search visits the same lattice regardless of seed.
        space = make_space()
        with CalibrationServer(store=InMemoryStore(), workers=1) as server:
            a = server.submit(make_request(space, algorithm="grid", evaluations=16, seed=1))
            assert a.wait(60)
            b = server.submit(make_request(space, algorithm="grid", evaluations=16, seed=2))
            assert b.wait(60)
        assert b.cache_hits > 0

    def test_fingerprints_isolate_scenarios(self):
        space = make_space()
        with CalibrationServer(store=InMemoryStore(), workers=1) as server:
            a = server.submit(make_request(space, fingerprint="fp-a"))
            assert a.wait(60)
            b = server.submit(make_request(space, fingerprint="fp-b"))
            assert b.wait(60)
        assert b.cache_hits == 0 and b.evaluations == 25


class TestConcurrentJobs:
    def test_in_flight_deduplication_shares_work(self):
        space = make_space()
        lock = threading.Lock()
        calls = []

        def slow(values):
            with lock:
                calls.append(dict(values))
            time.sleep(0.005)
            return quadratic(values)

        with CalibrationServer(store=InMemoryStore(), workers=2, progress_every=0) as server:
            a = server.submit(make_request(space, slow, evaluations=20, seed=3))
            b = server.submit(make_request(space, slow, evaluations=20, seed=3))
            assert a.wait(60) and b.wait(60)

        # Two identical concurrent jobs, 20 points each: every point is
        # simulated exactly once, the other job waits for the result.
        assert len(calls) == 20
        assert a.cache_hits + b.cache_hits == 20
        assert a.result.best_value == b.result.best_value

    def test_worker_pool_is_bounded(self):
        space = make_space()
        active = []
        peak = []
        lock = threading.Lock()

        def tracking(values):
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.002)
            with lock:
                active.pop()
            return quadratic(values)

        with CalibrationServer(store=InMemoryStore(), workers=2, dedupe_in_flight=False,
                               progress_every=0) as server:
            jobs = [
                server.submit(make_request(space, tracking, evaluations=10, seed=s,
                                           fingerprint=f"fp-{s}"))
                for s in range(5)
            ]
            for job in jobs:
                assert job.wait(60)
        assert max(peak) <= 2


class TestFailuresAndEvents:
    def test_failing_objective_fails_the_job_not_the_server(self):
        space = make_space()

        def broken(values):
            raise RuntimeError("simulator exploded")

        with CalibrationServer(store=InMemoryStore(), workers=1) as server:
            bad = server.submit(make_request(space, broken))
            assert bad.wait(60)
            assert bad.status is JobStatus.FAILED
            assert "simulator exploded" in bad.error
            # The server keeps serving after a failure...
            good = server.submit(make_request(space))
            assert good.wait(60)
            assert good.status is JobStatus.DONE

    def test_leader_failure_releases_waiters(self):
        # One job's simulator dies mid-point while another job waits on the
        # same in-flight point; the waiter must not deadlock.
        space = ParameterSpace([Parameter("x", 1.0, 16.0)])
        fail_first = {"armed": True}
        lock = threading.Lock()

        def flaky(values):
            with lock:
                should_fail = fail_first["armed"]
                fail_first["armed"] = False
            if should_fail:
                time.sleep(0.01)
                raise RuntimeError("first invocation dies")
            return (values["x"] - 4.0) ** 2

        with CalibrationServer(store=InMemoryStore(), workers=2, progress_every=0) as server:
            a = server.submit(make_request(space, flaky, evaluations=5, seed=3))
            b = server.submit(make_request(space, flaky, evaluations=5, seed=3))
            assert a.wait(30) and b.wait(30), "a waiter deadlocked on a failed leader"
        statuses = sorted(j.status for j in (a, b))
        assert JobStatus.DONE in statuses  # at least one job recovered

    def test_events_are_streamed_in_order(self):
        space = make_space()
        seen = []
        with CalibrationServer(
            store=InMemoryStore(), workers=1, progress_every=10,
            on_event=lambda job, event: seen.append((job.id, event.kind)),
        ) as server:
            job = server.submit(make_request(space, evaluations=25))
            assert job.wait(60)
        kinds = [kind for jid, kind in seen if jid == job.id]
        assert kinds[0] == "submitted"
        assert kinds[1] == "started"
        assert kinds[-1] == "finished"
        assert kinds.count("progress") == 2  # 25 evaluations, one event per 10
        assert [e.seq for e in job.events] == list(range(len(job.events)))

    def test_broken_event_subscriber_does_not_kill_the_job(self):
        space = make_space()

        def bad_subscriber(job, event):
            raise ValueError("subscriber bug")

        with CalibrationServer(store=InMemoryStore(), workers=1,
                               on_event=bad_subscriber) as server:
            job = server.submit(make_request(space))
            assert job.wait(60)
        assert job.status is JobStatus.DONE


class TestServerBookkeeping:
    def test_snapshot_and_get(self):
        space = make_space()
        with CalibrationServer(store=InMemoryStore(), workers=1) as server:
            job = server.submit(make_request(space))
            assert server.get(job.id) is job
            assert job.wait(60)
            server.drain()
            (record,) = server.snapshot()
        assert record["id"] == job.id
        assert record["status"] == "done"
        assert record["best_value"] == pytest.approx(job.result.best_value)

    def test_submit_after_shutdown_is_rejected(self):
        server = CalibrationServer(store=InMemoryStore(), workers=1)
        server.shutdown()
        with pytest.raises(RuntimeError):
            server.submit(make_request(make_space()))

    def test_store_backed_cache_counts_per_job_hits(self):
        store = InMemoryStore()
        store.put("fp", {"x": 4.0, "y": 9.0}, 0.0)
        cache = StoreBackedCache(store, "fp")
        assert cache.get((0.0, 0.0), {"x": 4.0, "y": 9.0}) == 0.0
        assert cache.get((0.0, 0.0), {"x": 5.0, "y": 9.0}) is None
        cache.put((0.0, 0.0), {"x": 5.0, "y": 9.0}, 1.0)
        assert cache.hits == 1 and cache.misses == 1
