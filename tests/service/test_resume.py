"""Crash/resume of service jobs: checkpoint events, spool persistence,
and the acceptance property — a killed-then-resumed job finishes with the
same best point as an uninterrupted one.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import EvaluationBudget, Parameter, ParameterSpace
from repro.service import CalibrationRequest, CalibrationServer, InMemoryStore, JobSpool


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def make_objective(space, crash_after=None):
    """A deterministic objective that optionally dies mid-calibration."""
    calls = {"n": 0}
    lock = threading.Lock()

    def objective(values):
        with lock:
            calls["n"] += 1
            if crash_after is not None and calls["n"] > crash_after:
                raise RuntimeError("simulated worker crash")
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    objective.calls = calls
    return objective


def run_job(request, store=None):
    """Run one job to completion; returns (job, checkpoint snapshots).

    Checkpoint events are delivered to the ``on_event`` callback only (they
    are deliberately not retained on the job), so the snapshots must be
    captured here — exactly what the CLI's spool persistence does.
    """
    snapshots = []

    def on_event(job, event):
        if event.kind == "checkpoint":
            snapshots.append(event.payload["state"])

    with CalibrationServer(store=store or InMemoryStore(), workers=1,
                           on_event=on_event) as server:
        job = server.submit(request)
        job.wait()
    return job, snapshots


class TestServerCheckpointEvents:
    def test_checkpoint_events_carry_resumable_state(self):
        space = make_space(2)
        request = CalibrationRequest(
            space=space, objective=make_objective(space), fingerprint="fp-ckpt",
            algorithm="annealing", budget=EvaluationBudget(30), seed=3,
            checkpoint_every=10,
        )
        job, snapshots = run_job(request)
        assert [len(s["history"]) for s in snapshots] == [10, 20, 30]
        assert snapshots[0]["algorithm"] == "annealing"
        assert snapshots[0]["seed"] == 3
        json.dumps(snapshots[0])  # must be spool-persistable as-is
        # Snapshots are streamed, not retained on the job's event log.
        assert not any(e.kind == "checkpoint" for e in job.events)

    def test_jobs_without_checkpointing_emit_none(self):
        space = make_space(2)
        job, snapshots = run_job(CalibrationRequest(
            space=space, objective=make_objective(space), fingerprint="fp-none",
            algorithm="random", budget=EvaluationBudget(10),
        ))
        assert snapshots == []
        assert not any(e.kind == "checkpoint" for e in job.events)


class TestKilledThenResumedJob:
    @pytest.mark.parametrize("algorithm", ["random", "cmaes", "gdfix"])
    def test_resumed_job_matches_uninterrupted_best(self, algorithm):
        space = make_space()
        budget = 60

        def request_for(objective, checkpoint=None):
            return CalibrationRequest(
                space=space, objective=objective, fingerprint=f"fp-{algorithm}",
                algorithm=algorithm, budget=EvaluationBudget(budget), seed=7,
                checkpoint_every=10, checkpoint=checkpoint,
            )

        reference, _ = run_job(request_for(make_objective(space)))
        assert reference.status.value == "done"

        # The same job, but the simulator dies after 25 evaluations.
        crashed, snapshots = run_job(request_for(make_objective(space, crash_after=25)))
        assert crashed.status.value == "failed"
        assert snapshots, "the crashed job left no checkpoint behind"
        last = json.loads(json.dumps(snapshots[-1]))
        assert 0 < len(last["history"]) < budget

        # Resubmit with the snapshot: the job finishes the trajectory.
        resumed, _ = run_job(request_for(make_objective(space), checkpoint=last))
        assert resumed.status.value == "done"
        assert resumed.result.best_value == reference.result.best_value
        assert resumed.result.best_values == reference.result.best_values
        assert [e.value for e in resumed.result.history] == [
            e.value for e in reference.result.history
        ]
        # Only the missing evaluations were simulated after the resume.
        assert resumed.evaluations == budget

    def test_resume_replays_nothing_through_the_store(self):
        """The resumed leg only pays for evaluations past the snapshot."""
        space = make_space(2)
        objective = make_objective(space)
        crashing = make_objective(space, crash_after=25)
        store = InMemoryStore()

        def request_for(obj, checkpoint=None, fresh_store=None):
            return CalibrationRequest(
                space=space, objective=obj, fingerprint="fp-replay",
                algorithm="lhs", budget=EvaluationBudget(40), seed=1,
                checkpoint_every=10, checkpoint=checkpoint,
            )

        crashed, snapshots = run_job(request_for(crashing), store=store)
        assert crashed.status.value == "failed"
        last = snapshots[-1]
        resumed, _ = run_job(request_for(objective, checkpoint=last), store=InMemoryStore())
        assert resumed.status.value == "done"
        # 20 evaluations were restored, so only 20 new calls were needed.
        assert objective.calls["n"] == 20


class TestSpoolCheckpoints:
    def test_checkpoint_roundtrip_and_clear(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        assert spool.read_checkpoint("job-0001") is None
        state = {"version": 1, "algorithm": "random", "history": []}
        path = spool.write_checkpoint("job-0001", state)
        assert path.exists()
        assert spool.read_checkpoint("job-0001") == state
        spool.write_checkpoint("job-0001", {**state, "algorithm": "lhs"})
        assert spool.read_checkpoint("job-0001")["algorithm"] == "lhs"
        spool.clear_checkpoint("job-0001")
        assert spool.read_checkpoint("job-0001") is None
        spool.clear_checkpoint("job-0001")  # idempotent


class TestAppendOnlyHistorySidecar:
    """Periodic checkpoints must stop rewriting the full history: the
    snapshot JSON stays O(state) and the history goes to an append-only
    sidecar, so a long job writes O(N) history bytes, not O(N²/k)."""

    @staticmethod
    def _state(n, extra=0):
        history = [
            {"index": i, "values": {"x": float(i)}, "unit": [0.1 * i],
             "value": float(i), "started_at": float(i), "finished_at": float(i) + 0.5}
            for i in range(n)
        ]
        return {"version": 1, "algorithm": "random", "seed": 0,
                "elapsed": float(n), "rng_state": {"state": n + extra},
                "algorithm_state": {"name": "random"}, "history": history}

    def test_snapshot_json_does_not_embed_the_history(self, tmp_path):
        import json

        spool = JobSpool(tmp_path / "spool")
        spool.write_checkpoint("job-0001", self._state(25))
        raw = json.loads(spool.checkpoint_path("job-0001").read_text())
        assert "history" not in raw
        assert raw["history_count"] == 25
        sidecar = spool.checkpoint_history_path("job-0001")
        assert sidecar.exists()
        assert sum(1 for _ in sidecar.open()) == 25

    def test_later_checkpoints_append_instead_of_rewriting(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        sidecar = spool.checkpoint_history_path("job-0001")
        spool.write_checkpoint("job-0001", self._state(10))
        size_after_first = sidecar.stat().st_size
        first_bytes = sidecar.read_bytes()
        spool.write_checkpoint("job-0001", self._state(20))
        assert sidecar.stat().st_size > size_after_first
        # The first 10 records were appended to, not rewritten.
        assert sidecar.read_bytes()[: len(first_bytes)] == first_bytes
        restored = spool.read_checkpoint("job-0001")
        assert restored == self._state(20)

    def test_read_checkpoint_reassembles_the_plain_format(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        state = self._state(7)
        spool.write_checkpoint("job-0001", state)
        restored = spool.read_checkpoint("job-0001")
        assert restored == state  # byte-identical to Calibrator.checkpoint()

    def test_fresh_process_rewrites_the_sidecar_once(self, tmp_path):
        """A new spool instance (fresh server process) must not trust a
        sidecar written by a previous incarnation."""
        first = JobSpool(tmp_path / "spool")
        first.write_checkpoint("job-0001", self._state(30))
        # New incarnation, job re-run from scratch with a different
        # trajectory (shorter history, different content).
        second = JobSpool(tmp_path / "spool")
        state = self._state(5, extra=99)
        second.write_checkpoint("job-0001", state)
        assert second.read_checkpoint("job-0001") == state
        sidecar = second.checkpoint_history_path("job-0001")
        assert sum(1 for _ in sidecar.open()) == 5

    def test_sidecar_longer_than_snapshot_is_truncated_on_read(self, tmp_path):
        """Crash between the sidecar append and the snapshot rename: the
        snapshot's history_count is the source of truth."""
        import json

        spool = JobSpool(tmp_path / "spool")
        spool.write_checkpoint("job-0001", self._state(10))
        with spool.checkpoint_history_path("job-0001").open("a") as handle:
            handle.write(json.dumps({"index": 10, "values": {"x": 10.0},
                                     "unit": [1.0], "value": 10.0,
                                     "started_at": 10.0, "finished_at": 10.5}) + "\n")
        restored = spool.read_checkpoint("job-0001")
        assert len(restored["history"]) == 10

    def test_clear_checkpoint_removes_the_sidecar(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.write_checkpoint("job-0001", self._state(3))
        spool.clear_checkpoint("job-0001")
        assert not spool.checkpoint_path("job-0001").exists()
        assert not spool.checkpoint_history_path("job-0001").exists()

    def test_end_to_end_resume_through_the_sidecar(self, tmp_path):
        """A calibrator checkpoint written through the spool and read back
        resumes to the exact uninterrupted trajectory."""
        import numpy as np

        from repro.core import Calibrator, EvaluationBudget, Parameter, ParameterSpace

        space = ParameterSpace([Parameter("x", 2.0**4, 2.0**12),
                                Parameter("y", 2.0**4, 2.0**12)])

        def objective(values):
            unit = space.to_unit_array(values)
            return float(np.sum((unit - 0.4) ** 2))

        full = Calibrator(space, objective, algorithm="lhs",
                          budget=EvaluationBudget(30), seed=4).run()

        spool = JobSpool(tmp_path / "spool")
        Calibrator(space, objective, algorithm="lhs",
                   budget=EvaluationBudget(12), seed=4).run(
            checkpoint_every=6,
            on_checkpoint=lambda s: spool.write_checkpoint("job-0001", s),
        )
        snapshot = spool.read_checkpoint("job-0001")
        assert len(snapshot["history"]) == 12
        resumed = Calibrator(space, objective, algorithm="lhs",
                             budget=EvaluationBudget(30), seed=4).run(resume=snapshot)
        assert [(e.unit, e.value) for e in resumed.history] == \
            [(e.unit, e.value) for e in full.history]
