"""Crash/resume of service jobs: checkpoint events, spool persistence,
and the acceptance property — a killed-then-resumed job finishes with the
same best point as an uninterrupted one.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import EvaluationBudget, Parameter, ParameterSpace
from repro.service import CalibrationRequest, CalibrationServer, InMemoryStore, JobSpool


def make_space(dimension=3):
    return ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(dimension)])


def make_objective(space, crash_after=None):
    """A deterministic objective that optionally dies mid-calibration."""
    calls = {"n": 0}
    lock = threading.Lock()

    def objective(values):
        with lock:
            calls["n"] += 1
            if crash_after is not None and calls["n"] > crash_after:
                raise RuntimeError("simulated worker crash")
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    objective.calls = calls
    return objective


def run_job(request, store=None):
    """Run one job to completion; returns (job, checkpoint snapshots).

    Checkpoint events are delivered to the ``on_event`` callback only (they
    are deliberately not retained on the job), so the snapshots must be
    captured here — exactly what the CLI's spool persistence does.
    """
    snapshots = []

    def on_event(job, event):
        if event.kind == "checkpoint":
            snapshots.append(event.payload["state"])

    with CalibrationServer(store=store or InMemoryStore(), workers=1,
                           on_event=on_event) as server:
        job = server.submit(request)
        job.wait()
    return job, snapshots


class TestServerCheckpointEvents:
    def test_checkpoint_events_carry_resumable_state(self):
        space = make_space(2)
        request = CalibrationRequest(
            space=space, objective=make_objective(space), fingerprint="fp-ckpt",
            algorithm="annealing", budget=EvaluationBudget(30), seed=3,
            checkpoint_every=10,
        )
        job, snapshots = run_job(request)
        assert [len(s["history"]) for s in snapshots] == [10, 20, 30]
        assert snapshots[0]["algorithm"] == "annealing"
        assert snapshots[0]["seed"] == 3
        json.dumps(snapshots[0])  # must be spool-persistable as-is
        # Snapshots are streamed, not retained on the job's event log.
        assert not any(e.kind == "checkpoint" for e in job.events)

    def test_jobs_without_checkpointing_emit_none(self):
        space = make_space(2)
        job, snapshots = run_job(CalibrationRequest(
            space=space, objective=make_objective(space), fingerprint="fp-none",
            algorithm="random", budget=EvaluationBudget(10),
        ))
        assert snapshots == []
        assert not any(e.kind == "checkpoint" for e in job.events)


class TestKilledThenResumedJob:
    @pytest.mark.parametrize("algorithm", ["random", "cmaes", "gdfix"])
    def test_resumed_job_matches_uninterrupted_best(self, algorithm):
        space = make_space()
        budget = 60

        def request_for(objective, checkpoint=None):
            return CalibrationRequest(
                space=space, objective=objective, fingerprint=f"fp-{algorithm}",
                algorithm=algorithm, budget=EvaluationBudget(budget), seed=7,
                checkpoint_every=10, checkpoint=checkpoint,
            )

        reference, _ = run_job(request_for(make_objective(space)))
        assert reference.status.value == "done"

        # The same job, but the simulator dies after 25 evaluations.
        crashed, snapshots = run_job(request_for(make_objective(space, crash_after=25)))
        assert crashed.status.value == "failed"
        assert snapshots, "the crashed job left no checkpoint behind"
        last = json.loads(json.dumps(snapshots[-1]))
        assert 0 < len(last["history"]) < budget

        # Resubmit with the snapshot: the job finishes the trajectory.
        resumed, _ = run_job(request_for(make_objective(space), checkpoint=last))
        assert resumed.status.value == "done"
        assert resumed.result.best_value == reference.result.best_value
        assert resumed.result.best_values == reference.result.best_values
        assert [e.value for e in resumed.result.history] == [
            e.value for e in reference.result.history
        ]
        # Only the missing evaluations were simulated after the resume.
        assert resumed.evaluations == budget

    def test_resume_replays_nothing_through_the_store(self):
        """The resumed leg only pays for evaluations past the snapshot."""
        space = make_space(2)
        objective = make_objective(space)
        crashing = make_objective(space, crash_after=25)
        store = InMemoryStore()

        def request_for(obj, checkpoint=None, fresh_store=None):
            return CalibrationRequest(
                space=space, objective=obj, fingerprint="fp-replay",
                algorithm="lhs", budget=EvaluationBudget(40), seed=1,
                checkpoint_every=10, checkpoint=checkpoint,
            )

        crashed, snapshots = run_job(request_for(crashing), store=store)
        assert crashed.status.value == "failed"
        last = snapshots[-1]
        resumed, _ = run_job(request_for(objective, checkpoint=last), store=InMemoryStore())
        assert resumed.status.value == "done"
        # 20 evaluations were restored, so only 20 new calls were needed.
        assert objective.calls["n"] == 20


class TestSpoolCheckpoints:
    def test_checkpoint_roundtrip_and_clear(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        assert spool.read_checkpoint("job-0001") is None
        state = {"version": 1, "algorithm": "random", "history": []}
        path = spool.write_checkpoint("job-0001", state)
        assert path.exists()
        assert spool.read_checkpoint("job-0001") == state
        spool.write_checkpoint("job-0001", {**state, "algorithm": "lhs"})
        assert spool.read_checkpoint("job-0001")["algorithm"] == "lhs"
        spool.clear_checkpoint("job-0001")
        assert spool.read_checkpoint("job-0001") is None
        spool.clear_checkpoint("job-0001")  # idempotent
