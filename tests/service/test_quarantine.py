"""Poison-point quarantine, crash-safe persistence, client/checkpoint recovery."""

import io
import json
import logging
import urllib.error

import numpy as np
import pytest

from repro.core import (
    Calibrator,
    EvaluationBudget,
    EvaluationFailure,
    FailurePolicy,
    Parameter,
    ParameterSpace,
)
from repro.core.evaluation import Claim, Objective
from repro.service import (
    InMemoryStore,
    JobSpool,
    JsonlStore,
    SqliteStore,
    StoreBackedCache,
    StoreClaim,
    StoredFailure,
)
from repro.service.fleet.client import FleetClient, FleetClientError

FP = "scenario-fp"
POINT = {"x": 1.0, "y": 2.0}


@pytest.fixture
def propagating_logs():
    """The CLI's log handler sets ``repro``'s propagate=False (once any CLI
    test has run), which would hide records from caplog's root handler."""
    logger = logging.getLogger("repro")
    before = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = before


def make_store(kind, tmp_path):
    if kind == "memory":
        return InMemoryStore()
    if kind == "jsonl":
        return JsonlStore(tmp_path / "store.jsonl")
    return SqliteStore(tmp_path / "store.db")


@pytest.mark.parametrize("kind", ["memory", "jsonl", "sqlite"])
class TestStoreQuarantine:
    def test_record_failure_roundtrip(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.record_failure(FP, POINT, "SimulatorError: boom", kind="transient", attempts=3)
        failure = store.get_failure(FP, POINT)
        assert isinstance(failure, StoredFailure)
        assert failure.error == "SimulatorError: boom"
        assert failure.kind == "transient"
        assert failure.attempts == 3
        assert failure.fingerprint == FP
        assert store.failure_count() == 1
        assert store.stats()["failures"] == 1

    def test_claim_answers_quarantined(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.record_failure(FP, POINT, "boom")
        claim = store.claim(FP, POINT, owner="job-2")
        assert claim.status == StoreClaim.QUARANTINED
        assert claim.failure is not None and claim.failure.error == "boom"

    def test_record_failure_releases_the_lease(self, kind, tmp_path):
        """A deferring driver must see the failure record at its next poll
        instead of waiting out the lease TTL."""
        store = make_store(kind, tmp_path)
        assert store.claim(FP, POINT, owner="leader").status == StoreClaim.CLAIMED
        assert store.claim(FP, POINT, owner="waiter").status == StoreClaim.LEASED
        store.record_failure(FP, POINT, "boom")
        claim = store.claim(FP, POINT, owner="waiter")
        assert claim.status == StoreClaim.QUARANTINED

    def test_put_heals_the_quarantine(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.record_failure(FP, POINT, "transient environment problem")
        store.put(FP, POINT, 4.5)
        assert store.get_failure(FP, POINT) is None
        assert store.failure_count() == 0
        claim = store.claim(FP, POINT, owner="job-2")
        assert claim.status == StoreClaim.HIT and claim.value == 4.5

    def test_clear_failure_lifts_the_quarantine(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.record_failure(FP, POINT, "boom")
        store.clear_failure(FP, POINT)
        assert store.get_failure(FP, POINT) is None
        assert store.claim(FP, POINT, owner="job-2").status == StoreClaim.CLAIMED

    def test_failures_filter_by_fingerprint(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        store.record_failure("fp-a", {"x": 1.0}, "a")
        store.record_failure("fp-a", {"x": 2.0}, "b")
        store.record_failure("fp-b", {"x": 1.0}, "c")
        assert len(store.failures()) == 3
        assert len(store.failures("fp-a")) == 2
        assert store.failures_recorded == 3


class TestJsonlPersistence:
    def test_failures_survive_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = JsonlStore(path)
        store.record_failure(FP, POINT, "boom", kind="timeout", attempts=2)
        reopened = JsonlStore(path)
        failure = reopened.get_failure(FP, POINT)
        assert failure is not None and failure.kind == "timeout"

    def test_tombstones_survive_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = JsonlStore(path)
        store.record_failure(FP, POINT, "boom")
        store.clear_failure(FP, POINT)
        reopened = JsonlStore(path)
        assert reopened.get_failure(FP, POINT) is None
        assert reopened.failure_count() == 0

    def test_published_value_beats_stale_quarantine_on_reload(self, tmp_path):
        # Writer A quarantines; writer B (separate handle, so A's in-memory
        # tombstone bookkeeping does not apply) publishes a value.  A
        # reader merging both logs must serve the value.
        path = tmp_path / "store.jsonl"
        JsonlStore(path).record_failure(FP, POINT, "boom")
        JsonlStore(path).put(FP, POINT, 7.0)
        reader = JsonlStore(path)
        assert reader.get_failure(FP, POINT) is None
        assert reader.peek(FP, POINT) == 7.0

    def test_truncated_trailing_line_is_dropped_with_warning(self, tmp_path, caplog, propagating_logs):
        """Satellite regression: a crash mid-append leaves a torn final
        line; reload keeps everything before it instead of failing."""
        path = tmp_path / "store.jsonl"
        store = JsonlStore(path)
        store.put(FP, {"x": 1.0}, 1.0)
        store.put(FP, {"x": 2.0}, 2.0)
        with path.open("a") as handle:
            handle.write('{"key": "torn-re')  # no newline, no closing brace
        with caplog.at_level(logging.WARNING, logger="repro.service.store"):
            reopened = JsonlStore(path)
        assert len(reopened) == 2
        assert reopened.peek(FP, {"x": 2.0}) == 2.0
        assert any("truncated" in r.getMessage() for r in caplog.records)

    def test_interior_corruption_still_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = JsonlStore(path)
        store.put(FP, {"x": 1.0}, 1.0)
        store.put(FP, {"x": 2.0}, 2.0)
        lines = path.read_text().splitlines()
        lines[0] = '{"corrupt'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            JsonlStore(path)

    def test_truncated_failures_sidecar_is_tolerated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = JsonlStore(path)
        store.record_failure(FP, POINT, "boom")
        with store.failures_path.open("a") as handle:
            handle.write('{"key": "to')
        reopened = JsonlStore(path)
        assert reopened.failure_count() == 1


class TestStoreBackedCacheQuarantine:
    def test_mark_failed_records_into_the_store(self):
        store = InMemoryStore()
        cache = StoreBackedCache(store, FP)
        cache.mark_failed((0.5,), POINT, EvaluationFailure("boom", kind="timeout", attempts=2))
        stored = store.get_failure(FP, POINT)
        assert stored is not None and stored.kind == "timeout" and stored.attempts == 2
        failure = cache.get_failure((0.5,), POINT)
        assert isinstance(failure, EvaluationFailure) and failure.error == "boom"

    def test_claim_maps_quarantine_to_the_core_claim(self):
        store = InMemoryStore()
        store.record_failure(FP, POINT, "boom")
        cache = StoreBackedCache(store, FP)
        claim = cache.claim((0.5,), POINT)
        assert claim.status == Claim.QUARANTINED
        assert claim.failure is not None and claim.failure.error == "boom"

    def test_get_reports_a_miss_not_a_lease_wait(self):
        store = InMemoryStore()
        store.record_failure(FP, POINT, "boom")
        cache = StoreBackedCache(store, FP)
        assert cache.get((0.5,), POINT) is None  # returns immediately


class TestSecondJobSkipsQuarantine:
    """The acceptance criterion: a job sharing the store must not
    re-evaluate a point a previous job already diagnosed as poison."""

    def _space(self):
        return ParameterSpace([Parameter("p0", 2.0**10, 2.0**30)])

    def test_objective_skips_a_peer_quarantined_point(self):
        space = self._space()
        store = InMemoryStore()
        point = space.from_unit_array(np.asarray([0.5]))

        def poison(values):
            raise ValueError("segfault at this parameter vector")

        job1 = Objective(
            poison, space, cache=StoreBackedCache(store, FP),
            failure_policy=FailurePolicy(penalty=1e6),
        )
        assert job1.evaluate(point) == 1e6
        assert store.failure_count() == 1

        calls = []

        def counting(values):
            calls.append(dict(values))
            return 1.0

        job2 = Objective(
            counting, space, cache=StoreBackedCache(store, FP),
            failure_policy=FailurePolicy(penalty=1e6),
        )
        assert job2.evaluate(point) == 1e6
        assert calls == []  # never re-evaluated
        assert job2.quarantine_skips == 1

    def test_second_calibration_run_shares_the_diagnosis(self):
        space = self._space()
        store = InMemoryStore()
        evaluated = []

        def poison_region(values):
            evaluated.append(values["p0"])
            if values["p0"] > 2.0**28:
                raise ValueError("poison region")
            return abs(values["p0"] - 2.0**20) / 2.0**20

        first = Calibrator(
            space, poison_region, algorithm="random", budget=EvaluationBudget(15),
            seed=4, cache=StoreBackedCache(store, FP),
            failure_policy=FailurePolicy(penalty=1e6),
        ).run()
        poisoned = store.failure_count()
        assert poisoned > 0  # seed 4 visits the poison region
        calls_before = len(evaluated)

        second = Calibrator(
            space, poison_region, algorithm="random", budget=EvaluationBudget(15),
            seed=4, cache=StoreBackedCache(store, FP), count_cache_hits=True,
            record_cache_hits=True,
            failure_policy=FailurePolicy(penalty=1e6),
        ).run()
        # The replay re-evaluated nothing: hits from the store, quarantine
        # skips for the poison points.
        assert len(evaluated) == calls_before
        assert store.failure_count() == poisoned
        assert sum(1 for e in second.history if e.failed) == poisoned


class _FakeResponse:
    def __init__(self, body):
        self._body = body

    def read(self):
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class TestFleetClientRetry:
    def _client(self, retries=2):
        return FleetClient("http://127.0.0.1:1", retries=retries, retry_backoff=0.001)

    def test_transient_urlerror_is_retried(self, monkeypatch):
        attempts = []

        def flaky_urlopen(request, timeout=None):
            attempts.append(1)
            if len(attempts) < 3:
                raise urllib.error.URLError("connection refused")
            return _FakeResponse(b'{"ok": true}')

        monkeypatch.setattr("urllib.request.urlopen", flaky_urlopen)
        assert self._client().health() == {"ok": True}
        assert len(attempts) == 3

    def test_retries_exhaust_and_surface(self, monkeypatch):
        attempts = []

        def dead_urlopen(request, timeout=None):
            attempts.append(1)
            raise urllib.error.URLError("connection refused")

        monkeypatch.setattr("urllib.request.urlopen", dead_urlopen)
        with pytest.raises(FleetClientError) as info:
            self._client(retries=2).health()
        assert len(attempts) == 3  # 1 try + 2 retries
        assert info.value.retryable

    def test_4xx_is_single_shot(self, monkeypatch):
        attempts = []

        def not_found(request, timeout=None):
            attempts.append(1)
            raise urllib.error.HTTPError(
                request.full_url, 404, "not found", {}, io.BytesIO(b"{}")
            )

        monkeypatch.setattr("urllib.request.urlopen", not_found)
        with pytest.raises(FleetClientError) as info:
            self._client().health()
        assert len(attempts) == 1
        assert not info.value.retryable

    def test_5xx_is_retried(self, monkeypatch):
        attempts = []

        def flaky_server(request, timeout=None):
            attempts.append(1)
            if len(attempts) < 2:
                raise urllib.error.HTTPError(
                    request.full_url, 503, "unavailable", {},
                    io.BytesIO(b'{"error": "restarting"}'),
                )
            return _FakeResponse(b'{"ok": true}')

        monkeypatch.setattr("urllib.request.urlopen", flaky_server)
        assert self._client().health() == {"ok": True}
        assert len(attempts) == 2

    def test_malformed_json_is_single_shot(self, monkeypatch):
        attempts = []

        def garbage(request, timeout=None):
            attempts.append(1)
            return _FakeResponse(b"<html>not json</html>")

        monkeypatch.setattr("urllib.request.urlopen", garbage)
        with pytest.raises(FleetClientError):
            self._client().health()
        assert len(attempts) == 1


class TestCheckpointPrevFallback:
    def _snapshot(self, marker, history=None):
        state = {"version": 1, "algorithm": "random", "seed": 0, "marker": marker}
        if history is not None:
            state["history"] = history
        return state

    def test_latest_snapshot_wins_when_readable(self, tmp_path):
        spool = JobSpool(tmp_path)
        job = spool.submit({"algorithm": "random"})
        spool.write_checkpoint(job, self._snapshot("first"))
        spool.write_checkpoint(job, self._snapshot("second"))
        assert spool.read_checkpoint(job)["marker"] == "second"
        assert spool.checkpoint_prev_path(job).exists()

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path, caplog, propagating_logs):
        spool = JobSpool(tmp_path)
        job = spool.submit({"algorithm": "random"})
        history = [{"index": 0, "values": {"x": 1.0}, "unit": [0.5], "value": 1.0,
                    "started_at": 0.0, "finished_at": 0.1}]
        spool.write_checkpoint(job, self._snapshot("first", history))
        spool.write_checkpoint(job, self._snapshot("second", history))
        spool.checkpoint_path(job).write_text('{"torn mid-wri')
        with caplog.at_level(logging.WARNING, logger="repro.service.spool"):
            state = spool.read_checkpoint(job)
        assert state is not None and state["marker"] == "first"
        assert state["history"] == history  # sidecar spliced back in
        assert any("falling back" in r.getMessage() for r in caplog.records)

    def test_both_snapshots_corrupt_restarts_from_scratch(self, tmp_path, caplog, propagating_logs):
        spool = JobSpool(tmp_path)
        job = spool.submit({"algorithm": "random"})
        spool.write_checkpoint(job, self._snapshot("first"))
        spool.write_checkpoint(job, self._snapshot("second"))
        spool.checkpoint_path(job).write_text("{broken")
        spool.checkpoint_prev_path(job).write_text("{also broken")
        with caplog.at_level(logging.WARNING, logger="repro.service.spool"):
            assert spool.read_checkpoint(job) is None
        assert len([r for r in caplog.records if "unreadable" in r.getMessage()]) >= 1

    def test_no_checkpoint_is_simply_none(self, tmp_path):
        spool = JobSpool(tmp_path)
        job = spool.submit({"algorithm": "random"})
        assert spool.read_checkpoint(job) is None

    def test_clear_checkpoint_removes_the_fallback_too(self, tmp_path):
        spool = JobSpool(tmp_path)
        job = spool.submit({"algorithm": "random"})
        spool.write_checkpoint(job, self._snapshot("first"))
        spool.write_checkpoint(job, self._snapshot("second"))
        spool.clear_checkpoint(job)
        assert not spool.checkpoint_path(job).exists()
        assert not spool.checkpoint_prev_path(job).exists()
