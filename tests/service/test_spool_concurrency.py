"""JobSpool under concurrent writers: no torn files, no lost merges.

``update()`` is a read-modify-write cycle over a shared JSON record; the
fleet front-end and the CLI can both rewrite one job's status file.  The
rewrite was already atomic (``os.replace``), but without the ``flock``
serialisation two concurrent updates could interleave load/store and one
writer's fields vanished silently.  ``flock`` excludes between distinct
file descriptors, so threads over independent :class:`JobSpool`
instances exercise exactly the cross-process interleaving.
"""

import threading

from repro.service.spool import JobSpool

WRITERS = 8
ROUNDS = 25


def test_concurrent_updates_lose_no_fields(tmp_path):
    spool = JobSpool(tmp_path)
    job_id = spool.submit({"algorithm": "random"})
    errors = []

    def writer(index):
        # A private spool instance per writer: the in-process lock-free
        # path must not mask the cross-process race.
        own = JobSpool(tmp_path)
        try:
            for round_ in range(ROUNDS):
                own.update(job_id, **{f"w{index}-{round_}": round_})
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    record = spool.load(job_id)
    missing = [
        f"w{i}-{j}"
        for i in range(WRITERS)
        for j in range(ROUNDS)
        if f"w{i}-{j}" not in record
    ]
    assert not missing, f"lost {len(missing)} concurrent merges: {missing[:5]}..."
    assert record["id"] == job_id and record["status"] == "pending"


def test_readers_never_see_a_torn_record(tmp_path):
    spool = JobSpool(tmp_path)
    job_id = spool.submit({"algorithm": "random"})
    stop = threading.Event()
    problems = []

    def reader():
        while not stop.is_set():
            record = spool.load(job_id)  # raises on torn/partial JSON
            if record.get("id") != job_id:
                problems.append(record)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for round_ in range(200):
            spool.update(job_id, round=round_, status="running")
    finally:
        stop.set()
        thread.join()
    assert not problems
    assert spool.load(job_id)["round"] == 199


def test_lock_files_do_not_pollute_job_listings(tmp_path):
    spool = JobSpool(tmp_path)
    job_id = spool.submit({"algorithm": "random"})
    spool.update(job_id, status="running")
    assert spool.job_ids() == [job_id]
    assert spool.runnable() == [job_id]
