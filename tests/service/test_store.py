"""The shared evaluation store: keys, backends, concurrency."""

import json
import threading

import pytest

from repro.service import (
    InMemoryStore,
    JsonlStore,
    SqliteStore,
    StoredEvaluation,
    canonical_params,
    evaluation_key,
    open_store,
)


class TestCanonicalKeys:
    def test_dict_ordering_is_irrelevant(self):
        a = evaluation_key("fp", {"x": 1.0, "y": 2.0})
        b = evaluation_key("fp", {"y": 2.0, "x": 1.0})
        assert a == b

    def test_int_and_float_spellings_are_equal(self):
        assert evaluation_key("fp", {"x": 4}) == evaluation_key("fp", {"x": 4.0})

    def test_different_points_differ(self):
        assert evaluation_key("fp", {"x": 4.0}) != evaluation_key("fp", {"x": 4.0000001})

    def test_different_fingerprints_differ(self):
        assert evaluation_key("fp-a", {"x": 4.0}) != evaluation_key("fp-b", {"x": 4.0})

    def test_canonical_params_sorts_and_coerces(self):
        assert canonical_params({"b": 2, "a": 1.5}) == (("a", 1.5), ("b", 2.0))

    def test_key_is_content_addressed(self):
        # Same content, independently constructed mappings -> same address.
        assert evaluation_key("fp", dict(x=1, y=2)) == evaluation_key(
            "fp", {k: float(v) for k, v in [("y", 2), ("x", 1)]}
        )


class TestInMemoryStore:
    def test_put_get_roundtrip_and_stats(self):
        store = InMemoryStore()
        assert store.get("fp", {"x": 1.0}) is None
        store.put("fp", {"x": 1.0}, 42.0)
        assert store.get("fp", {"x": 1}) == 42.0
        assert len(store) == 1
        assert store.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "puts": 1,
            "lease_conflicts": 0, "failures": 0,
        }

    def test_cross_job_hit_with_reordered_dict(self):
        # Job 1 stores with one ordering; job 2 asks with another.
        store = InMemoryStore()
        store.put("fp", {"core_speed": 2.0**30, "disk_bandwidth": 2.0**25}, 3.5)
        assert store.get("fp", {"disk_bandwidth": 2.0**25, "core_speed": 2.0**30}) == 3.5

    def test_fingerprints_are_isolated(self):
        store = InMemoryStore()
        store.put("fp-a", {"x": 1.0}, 1.0)
        assert store.get("fp-b", {"x": 1.0}) is None
        assert ("fp-a", {"x": 1.0}) in store
        assert ("fp-b", {"x": 1.0}) not in store

    def test_entries_filter_by_fingerprint(self):
        store = InMemoryStore()
        store.put("fp-a", {"x": 1.0}, 1.0)
        store.put("fp-a", {"x": 2.0}, 2.0)
        store.put("fp-b", {"x": 1.0}, 3.0)
        assert len(store.entries()) == 3
        assert len(store.entries("fp-a")) == 2
        assert store.fingerprints() == ["fp-a", "fp-b"]


@pytest.mark.parametrize("suffix", [".jsonl", ".db"])
class TestFileBackends:
    def test_reload_from_disk(self, tmp_path, suffix):
        path = tmp_path / ("store" + suffix)
        store = open_store(path)
        store.put("fp", {"x": 4.0, "y": 8.0}, 12.5)
        store.put("fp", {"x": 2.0, "y": 2.0}, 4.0)
        store.close()

        reopened = open_store(path)
        assert reopened.get("fp", {"y": 8.0, "x": 4}) == 12.5
        assert len(reopened) == 2
        reopened.close()

    def test_concurrent_writers_are_safe(self, tmp_path, suffix):
        path = tmp_path / ("store" + suffix)
        store = open_store(path)
        n_threads, n_points = 8, 25
        errors = []

        def writer(tid):
            try:
                for i in range(n_points):
                    store.put(f"fp-{tid % 2}", {"x": float(tid), "y": float(i)}, tid * 1000.0 + i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) == n_threads * n_points
        store.close()

        # Every entry survives a reload intact (no interleaved/corrupt lines).
        reopened = open_store(path)
        assert len(reopened) == n_threads * n_points
        for tid in range(n_threads):
            for i in range(n_points):
                assert reopened.get(f"fp-{tid % 2}", {"y": float(i), "x": float(tid)}) == (
                    tid * 1000.0 + i
                )
        reopened.close()


class TestJsonlStore:
    def test_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = JsonlStore(path)
        store.put("fp", {"x": 1.0}, 9.0)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["fingerprint"] == "fp"
        assert lines[0]["value"] == 9.0

    def test_reload_merges_external_appends(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = JsonlStore(path)
        store.put("fp", {"x": 1.0}, 9.0)
        # Another process appends a line...
        other = StoredEvaluation(
            key=evaluation_key("fp", {"x": 2.0}),
            fingerprint="fp",
            values={"x": 2.0},
            value=7.0,
            created_at=0.0,
        )
        with path.open("a") as handle:
            handle.write(json.dumps(other.to_dict()) + "\n")
        assert store.get("fp", {"x": 2.0}) is None  # not yet visible
        assert store.reload() == 2
        assert store.get("fp", {"x": 2.0}) == 7.0


class TestOpenStore:
    def test_dispatch(self, tmp_path):
        assert isinstance(open_store(None), InMemoryStore)
        assert isinstance(open_store(tmp_path / "a.jsonl"), JsonlStore)
        sqlite_store = open_store(tmp_path / "a.db")
        assert isinstance(sqlite_store, SqliteStore)
        sqlite_store.close()
