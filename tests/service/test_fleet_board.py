"""Fleet building blocks: the task board, the lease-free job cache, the
evaluator transport, and the fault injector's counting."""

import threading
import time

import pytest

from repro.core import Parameter, ParameterSpace
from repro.core.evaluation import Claim
from repro.service import InMemoryStore
from repro.service.fleet import FaultInjector, FleetEvaluator, StoreReadCache, TaskBoard


def make_space():
    return ParameterSpace([Parameter("x", 1.0, 16.0), Parameter("y", 1.0, 16.0)])


class TestTaskBoard:
    def test_post_resolve_round_trip(self):
        board = TaskBoard()
        future = board.post("job-1", "fp", {"x": 2.0, "y": 3.0}, {"platform": "FCSN"})
        assert len(board) == 1
        (task,) = board.open_tasks()
        assert task.job_id == "job-1"
        assert task.values == {"x": 2.0, "y": 3.0}
        assert task.spec == {"platform": "FCSN"}
        assert board.resolve(task.id, 7.5, 0.25) is True
        assert future.result(timeout=1) == (7.5, 0.25)
        assert len(board) == 0

    def test_identical_open_points_share_one_task(self):
        board = TaskBoard()
        first = board.post("job-1", "fp", {"x": 2.0, "y": 3.0}, {})
        second = board.post("job-2", "fp", {"x": 2.0, "y": 3.0}, {})
        assert len(board) == 1, "the identical point must join, not re-post"
        (task,) = board.open_tasks()
        board.resolve(task.id, 1.0)
        assert first.result(timeout=1)[0] == 1.0
        assert second.result(timeout=1)[0] == 1.0

    def test_different_fingerprints_do_not_share(self):
        board = TaskBoard()
        board.post("job-1", "fp-a", {"x": 2.0, "y": 3.0}, {})
        board.post("job-1", "fp-b", {"x": 2.0, "y": 3.0}, {})
        assert len(board) == 2

    def test_double_resolve_is_benign(self):
        board = TaskBoard()
        board.post("job-1", "fp", {"x": 2.0, "y": 3.0}, {})
        (task,) = board.open_tasks()
        assert board.resolve(task.id, 1.0) is True
        # A second worker losing the publish race must get False, not an error.
        assert board.resolve(task.id, 2.0) is False

    def test_fail_delivers_the_error_through_the_future(self):
        board = TaskBoard()
        future = board.post("job-1", "fp", {"x": 2.0, "y": 3.0}, {})
        (task,) = board.open_tasks()
        assert board.fail(task.id, "simulator exploded") is True
        with pytest.raises(RuntimeError, match="simulator exploded"):
            future.result(timeout=1)

    def test_withdraw_job_cancels_only_that_jobs_tasks(self):
        board = TaskBoard()
        mine = board.post("job-1", "fp", {"x": 2.0, "y": 3.0}, {})
        other = board.post("job-2", "fp", {"x": 5.0, "y": 6.0}, {})
        assert board.withdraw_job("job-1") == 1
        assert mine.cancelled()
        assert not other.cancelled()
        assert len(board) == 1

    def test_wait_for_tasks_long_polls_until_a_post(self):
        board = TaskBoard()

        def post_later():
            time.sleep(0.1)
            board.post("job-1", "fp", {"x": 2.0, "y": 3.0}, {})

        thread = threading.Thread(target=post_later)
        start = time.monotonic()
        thread.start()
        tasks = board.wait_for_tasks(5.0)
        elapsed = time.monotonic() - start
        thread.join()
        assert len(tasks) == 1
        assert elapsed < 4.0, "the long-poll must return on the post, not the timeout"

    def test_wait_for_tasks_times_out_empty(self):
        board = TaskBoard()
        start = time.monotonic()
        assert board.wait_for_tasks(0.1) == []
        assert time.monotonic() - start < 2.0


class TestStoreReadCache:
    def test_never_leases(self):
        store = InMemoryStore()
        cache = StoreReadCache(store, "fp")
        claim = cache.claim(("fp", "k"), {"x": 2.0})
        assert claim.status == Claim.CLAIMED
        # Unlike StoreBackedCache, no lease was recorded in the store.
        assert store.lease_count() == 0

    def test_hits_count_stored_points(self):
        store = InMemoryStore()
        store.put("fp", {"x": 2.0}, 9.0)
        cache = StoreReadCache(store, "fp")
        claim = cache.claim(("fp", "k"), {"x": 2.0})
        assert claim.status == Claim.HIT and claim.value == 9.0
        assert cache.hits == 1
        assert cache.get(("fp", "k"), {"x": 2.0}) == 9.0
        assert cache.hits == 2

    def test_put_and_poll_round_trip(self):
        store = InMemoryStore()
        cache = StoreReadCache(store, "fp")
        assert cache.poll(("fp", "k"), {"x": 2.0}) is None
        cache.put(("fp", "k"), {"x": 2.0}, 4.5)
        assert cache.poll(("fp", "k"), {"x": 2.0}) == 4.5
        cache.cancel(("fp", "k"), {"x": 2.0})  # must be a harmless no-op


class TestFleetEvaluator:
    def test_submit_posts_and_close_withdraws(self):
        board = TaskBoard()
        evaluator = FleetEvaluator(board, "job-1", "fp", spec={"platform": "FCSN"},
                                   space=make_space())
        future = evaluator.submit({"x": 2.0, "y": 3.0})
        (task,) = board.open_tasks()
        assert task.spec == {"platform": "FCSN"}
        board.resolve(task.id, 3.25, 0.5)
        assert future.result(timeout=1) == (3.25, 0.5)
        evaluator.submit({"x": 4.0, "y": 5.0})
        evaluator.close()
        assert len(board) == 0

    def test_clock_surface(self):
        evaluator = FleetEvaluator(TaskBoard(), "job-1", "fp")
        evaluator.reset_clock(elapsed_offset=10.0)
        assert evaluator.elapsed >= 10.0


class TestFaultInjector:
    def test_disabled_injector_never_fires(self):
        fault = FaultInjector()
        for _ in range(100):
            fault.on_claim()
            fault.on_publish()
        assert fault.claims == 100 and fault.publishes == 100

    def test_publish_delay_sleeps_without_dying(self):
        fault = FaultInjector(publish_delay=0.05)
        start = time.monotonic()
        fault.on_publish()
        assert time.monotonic() - start >= 0.05
