"""Span tracing: nesting, sinks, and parent/child integrity under the
asynchronous out-of-order driver."""

import json

import pytest

from repro.telemetry.tracing import (
    NULL_TRACER,
    InMemoryTraceSink,
    JsonlTraceSink,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_begin_end_emits_one_span(self):
        sink = InMemoryTraceSink()
        tracer = Tracer(sink)
        span = tracer.begin("work", kind="test")
        tracer.end(span, value=3.0)
        assert len(sink.spans) == 1
        emitted = sink.spans[0]
        assert emitted.name == "work"
        assert emitted.attrs == {"kind": "test", "value": 3.0}
        assert emitted.end >= emitted.start
        assert emitted.duration >= 0.0

    def test_context_manager_nests_ambiently(self):
        sink = InMemoryTraceSink()
        tracer = Tracer(sink)
        with tracer.span("parent") as parent:
            with tracer.span("child"):
                pass
        child, outer = sink.spans  # children end (and emit) first
        assert child.name == "child"
        assert child.parent_id == parent.span_id
        assert child.trace_id == outer.trace_id

    def test_explicit_parent_wins_over_ambient(self):
        sink = InMemoryTraceSink()
        tracer = Tracer(sink)
        root = tracer.begin("root")
        with tracer.span("ambient"):
            span = tracer.begin("work", parent=root)
            tracer.end(span)
        assert sink.by_name("work")[0].parent_id == root.span_id

    def test_span_ids_are_unique(self):
        tracer = Tracer(InMemoryTraceSink())
        ids = {tracer.begin(f"s{i}").span_id for i in range(100)}
        assert len(ids) == 100

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.begin("x") is None
        NULL_TRACER.end(None, value=1)  # must not raise
        with NULL_TRACER.span("x") as span:
            assert span is None

    def test_set_and_use_tracer(self):
        sink = InMemoryTraceSink()
        tracer = Tracer(sink)
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(previous)
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is not tracer


class TestJsonlSink:
    def test_spans_round_trip_through_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlTraceSink(path))
        with tracer.span("outer", driver="test"):
            with tracer.span("inner"):
                pass
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["attrs"] == {}
        assert outer["attrs"] == {"driver": "test"}
        for record in records:
            assert record["end"] >= record["start"]


class TestAsyncDriverSpanIntegrity:
    @pytest.mark.parametrize("algorithm", ["random"])
    def test_every_evaluation_has_a_span_chained_to_the_root(self, algorithm):
        """Out-of-order completions must still produce one evaluation span
        per point, all parented on the run's root calibration span."""
        from repro.core import AsyncCalibrator, EvaluationBudget
        from repro.core.parameters import Parameter, ParameterSpace

        sink = InMemoryTraceSink()
        previous = set_tracer(Tracer(sink))
        try:
            space = ParameterSpace([Parameter("x", 1.0, 2.0, scale="linear")])
            result = AsyncCalibrator(
                space, lambda v: v["x"], algorithm=algorithm,
                budget=EvaluationBudget(16), seed=3,
                workers=4, mode="thread", cache=False,
            ).run()
        finally:
            set_tracer(previous)

        roots = sink.by_name("calibration")
        assert len(roots) == 1
        root = roots[0]
        evaluations = sink.by_name("evaluation")
        assert len(evaluations) == result.evaluations == 16
        assert all(span.parent_id == root.span_id for span in evaluations)
        assert all(span.trace_id == root.trace_id for span in evaluations)
        # Spans carry the objective value of the point they followed.
        values = sorted(span.attrs["value"] for span in evaluations)
        assert values == sorted(e.value for e in result.history)
