"""Per-point evaluation wall-clock in the history (time-to-quality).

The parallel drivers used to stamp a whole batch with the same
timestamps; these tests pin the fixed behaviour — each evaluation's
``finished_at - started_at`` reflects that point's own cost, measured in
the worker, so reports can say *when* quality was reached, not just at
which evaluation index.
"""

import time

import pytest

from repro.core import AsyncCalibrator, BatchCalibrator, EvaluationBudget
from repro.core.parameters import Parameter, ParameterSpace

SLEEP_FAST = 0.02
SLEEP_SLOW = 0.30
#: generous jitter allowance for loaded CI machines
JITTER = 0.15


def _expected_sleep(x: float) -> float:
    # Keyed on the candidate (not call order) so every driver pays the
    # same cost for the same point regardless of scheduling.
    return SLEEP_SLOW if x > 1.5 else SLEEP_FAST


def objective(values):
    time.sleep(_expected_sleep(values["x"]))
    return values["x"]


def _space():
    return ParameterSpace([Parameter("x", 1.0, 2.0, scale="linear")])


def _assert_per_point_durations(history):
    for evaluation in history:
        expected = _expected_sleep(evaluation.values["x"])
        duration = evaluation.finished_at - evaluation.started_at
        # At least its own sleep (time.sleep never wakes early) ...
        assert duration >= expected - 0.01, (evaluation.values, duration, expected)
        # ... and not the batch-wide envelope: a fast point must not
        # inherit a slow batchmate's wall-clock.
        assert duration <= expected + JITTER, (evaluation.values, duration, expected)
        assert evaluation.started_at >= 0.0
        assert evaluation.finished_at >= evaluation.started_at


class TestBatchDriverTiming:
    @pytest.mark.parametrize("mode", ["thread", "serial"])
    def test_history_records_per_point_wall_clock(self, mode):
        result = BatchCalibrator(
            _space(), objective, algorithm="random",
            budget=EvaluationBudget(12), seed=5,
            workers=4, mode=mode, cache=False,
        ).run()
        assert result.evaluations == 12
        _assert_per_point_durations(result.history)


class TestAsyncDriverTiming:
    def test_history_records_per_point_wall_clock(self):
        result = AsyncCalibrator(
            _space(), objective, algorithm="random",
            budget=EvaluationBudget(12), seed=5,
            workers=4, mode="thread", cache=False,
        ).run()
        assert result.evaluations == 12
        _assert_per_point_durations(result.history)
