"""Disabled telemetry must be functionally invisible and near-free.

The hard perf gate lives in ``benchmarks/bench_telemetry_overhead.py``
(run with ``--smoke`` in CI); these tests pin the *functional* no-op
contract plus a deliberately generous timing ratio that stays safe on
loaded CI machines.
"""

import time

from repro.core import Calibrator, EvaluationBudget
from repro.core.parameters import Parameter, ParameterSpace
from repro.telemetry.metrics import registry
from repro.telemetry.tracing import NULL_TRACER, current_tracer


def _space():
    return ParameterSpace([Parameter("x", 1.0, 2.0, scale="linear")])


def _run(budget=16):
    return Calibrator(
        _space(), lambda v: v["x"], algorithm="random",
        budget=EvaluationBudget(budget), seed=7, cache=False,
    ).run()


class TestDisabledIsInvisible:
    def test_default_tracer_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_serial_run_records_no_metrics_when_disabled(self):
        reg = registry()
        assert not reg.enabled
        result = _run()
        assert result.evaluations == 16
        # Instruments may exist (created lazily on first touch) but none
        # may have recorded anything while the registry was disabled.
        for instrument in reg.instruments():
            value = getattr(instrument, "value", None)
            if value is not None:
                assert value == 0.0, instrument.name
            count = getattr(instrument, "count", None)
            if count is not None:
                assert count == 0, instrument.name

    def test_result_telemetry_is_none_when_disabled(self):
        result = _run(budget=4)
        assert result.telemetry is None

    def test_result_carries_snapshot_when_enabled(self):
        reg = registry()
        reg.reset()
        reg.enable()
        try:
            result = _run(budget=4)
        finally:
            reg.disable()
            reg.reset()
        assert result.telemetry is not None
        names = {m["name"] for m in result.telemetry["metrics"]}
        assert "repro_objective_evaluations_total" in names


class TestOverheadStaysSmall:
    def test_disabled_instrumented_run_is_not_slower_than_1_5x_raw(self):
        """Loose sanity bound — the precise <5% gate is the benchmark's
        job; here we only guard against an accidental O(n) regression
        (e.g. building spans even when tracing is off)."""
        def work(values):
            deadline = time.perf_counter() + 0.002
            acc = values["x"]
            while time.perf_counter() < deadline:
                acc = acc * 1.000001 + 1e-9
            return acc

        import numpy as np

        space = _space()
        rng = np.random.default_rng(0)
        points = [space.sample(rng) for _ in range(32)]

        # Warm-up both paths once.
        work(points[0])
        Calibrator(space, work, algorithm="random",
                   budget=EvaluationBudget(2), seed=1, cache=False).run()

        start = time.perf_counter()
        for point in points:
            work(point)
        raw = time.perf_counter() - start

        start = time.perf_counter()
        Calibrator(space, work, algorithm="random",
                   budget=EvaluationBudget(32), seed=1, cache=False).run()
        instrumented = time.perf_counter() - start

        assert instrumented < raw * 1.5 + 0.05, (raw, instrumented)
