"""The metrics registry: correctness, identity, gating and thread-safety."""

import threading

import pytest

from repro.telemetry.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry


@pytest.fixture()
def reg():
    return MetricsRegistry(enabled=True)


class TestInstruments:
    def test_counter_accumulates(self, reg):
        c = reg.counter("jobs_total", "Jobs.")
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_gauge_set_inc_dec(self, reg):
        g = reg.gauge("in_flight", "In flight.")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_histogram_observe_and_cumulative_buckets(self, reg):
        h = reg.histogram("latency", "Latency.", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.7, 99.0):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(102.7)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 3), (float("inf"), 4)]

    def test_histogram_timer_observes_elapsed(self, reg):
        h = reg.histogram("t", "T.")
        with h.time():
            pass
        assert h.count == 1
        assert 0.0 <= h.sum < 1.0

    def test_same_identity_returns_same_object(self, reg):
        a = reg.counter("hits", "Hits.", backend="sqlite")
        b = reg.counter("hits", backend="sqlite")
        c = reg.counter("hits", backend="jsonl")
        assert a is b
        assert a is not c

    def test_kind_mismatch_raises(self, reg):
        reg.counter("x", "X.")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_default_buckets_cover_subseconds_to_minutes(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 60.0


class TestGating:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("n", "N.")
        h = reg.histogram("h", "H.")
        c.inc()
        h.observe(1.0)
        assert c.value == 0.0
        assert h.count == 0

    def test_enable_starts_recording_on_existing_instruments(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("n", "N.")
        c.inc()
        reg.enable()
        c.inc()
        assert c.value == 1.0

    def test_reset_zeroes_but_keeps_identity(self, reg):
        c = reg.counter("n", "N.")
        c.inc(7)
        reg.reset()
        assert c.value == 0.0
        assert reg.counter("n") is c


class TestExposition:
    def test_render_text_prometheus_format(self, reg):
        reg.counter("repro_hits_total", "Cache hits.", driver="batch").inc(2)
        reg.histogram("repro_seconds", "Durations.", buckets=(1.0,)).observe(0.5)
        text = reg.render_text()
        assert "# HELP repro_hits_total Cache hits." in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{driver="batch"} 2' in text
        assert 'repro_seconds_bucket{le="1"} 1' in text
        assert 'repro_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_seconds_count 1" in text

    def test_label_values_are_escaped(self, reg):
        reg.counter("c", "C.", label='say "hi"\\').inc()
        assert 'label="say \\"hi\\"\\\\"' in reg.render_text()

    def test_snapshot_structure(self, reg):
        reg.counter("a_total", "A.").inc()
        reg.histogram("b_seconds", "B.").observe(2.0)
        snap = reg.snapshot()
        assert snap["enabled"] is True
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["a_total"]["type"] == "counter"
        assert by_name["a_total"]["value"] == 1.0
        assert by_name["b_seconds"]["type"] == "histogram"
        assert by_name["b_seconds"]["count"] == 1
        assert by_name["b_seconds"]["sum"] == pytest.approx(2.0)

    def test_save_snapshot_roundtrips_json(self, reg, tmp_path):
        import json

        reg.counter("a_total", "A.").inc(3)
        path = reg.save_snapshot(tmp_path / "snap.json")
        data = json.loads(path.read_text())
        assert data["metrics"][0]["value"] == 3.0


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self, reg):
        c = reg.counter("n", "N.")
        h = reg.histogram("h", "H.", buckets=(0.5,))

        def worker():
            for _ in range(10_000):
                c.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000.0
        assert h.count == 80_000
        assert h.cumulative_buckets()[0][1] == 80_000

    def test_concurrent_instrument_creation_yields_one_object(self, reg):
        seen = []

        def worker():
            seen.append(reg.counter("same", "S.", k="v"))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestConcurrentDrivers:
    def test_two_batch_calibrators_share_the_registry_safely(self):
        """Two lock-step drivers in threads record into the process-wide
        registry at once; dispatch counters must add up exactly."""
        from repro.core import BatchCalibrator, EvaluationBudget
        from repro.core.parameters import Parameter, ParameterSpace
        from repro.telemetry.metrics import registry

        reg = registry()
        reg.reset()
        reg.enable()
        try:
            space = ParameterSpace([Parameter("x", 1.0, 2.0, scale="linear")])
            results = []

            def run(seed):
                result = BatchCalibrator(
                    space, lambda v: v["x"], algorithm="random",
                    budget=EvaluationBudget(12), seed=seed,
                    workers=2, mode="serial", cache=False,
                ).run()
                results.append(result)

            threads = [threading.Thread(target=run, args=(s,)) for s in (1, 2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 2
            dispatched = reg.counter("repro_driver_dispatches_total", driver="batch")
            assert dispatched.value == 24.0
        finally:
            reg.disable()
            reg.reset()
