"""Simulator profiling hooks: engine phase attribution and the hepsim
stats-dict folding."""

import pytest

from repro.telemetry.profiling import (
    SimulationProfile,
    disable_simulation_profiling,
    enable_simulation_profiling,
    simulation_profiling_enabled,
)


@pytest.fixture()
def profiling_enabled():
    enable_simulation_profiling()
    try:
        yield
    finally:
        disable_simulation_profiling()


class TestSimulationProfile:
    def test_add_accumulates_seconds_and_counts(self):
        profile = SimulationProfile()
        profile.add("sharing", 0.25)
        profile.add("sharing", 0.75, count=3)
        assert profile.seconds("sharing") == pytest.approx(1.0)
        assert profile.count("sharing") == 4
        assert profile.total_seconds == pytest.approx(1.0)

    def test_to_dict_is_flat_and_picklable(self):
        import pickle

        profile = SimulationProfile()
        profile.add("advance", 0.5, count=2)
        data = profile.to_dict()
        assert data == {"phase_advance_seconds": 0.5, "phase_advance_count": 2.0}
        assert pickle.loads(pickle.dumps(data)) == data

    def test_merge_and_breakdown(self):
        a = SimulationProfile()
        a.add("sharing", 0.9)
        b = SimulationProfile()
        b.add("sharing", 0.1)
        b.add("timers", 0.5, count=7)
        a.merge(b)
        text = a.breakdown()
        assert "sharing" in text and "timers" in text
        # Largest share first.
        assert text.index("sharing") < text.index("timers")

    def test_flag_toggles(self):
        assert not simulation_profiling_enabled()
        enable_simulation_profiling()
        assert simulation_profiling_enabled()
        disable_simulation_profiling()
        assert not simulation_profiling_enabled()


class TestEngineHooks:
    def _run_engine(self, profile):
        from repro.simgrid.engine import SimulationEngine
        from repro.simgrid.host import Host

        engine = SimulationEngine()
        engine.profile = profile
        host = Host(engine, "node", speed=100.0, cores=2)

        def body():
            yield host.exec_async("a", 200.0)
            yield host.exec_async("b", 100.0)

        engine.add_process(body(), "main")
        engine.run()
        return engine

    def test_phases_attributed_when_profile_attached(self):
        profile = SimulationProfile()
        engine = self._run_engine(profile)
        assert profile.seconds("sharing") >= 0.0
        assert profile.count("sharing") == engine.sharing_update_count
        assert profile.count("advance") == engine.completed_activity_count
        assert profile.count("timers") >= 1  # process wake-ups are timers

    def test_no_profile_leaves_engine_untouched(self):
        engine = self._run_engine(None)
        assert engine.profile is None
        assert engine.completed_activity_count > 0


class TestHepsimFolding:
    def _stats(self):
        from repro.hepsim import GroundTruthGenerator, Scenario
        from repro.hepsim.calibration import CaseStudyProblem
        from repro.hepsim.simulator import HEPSimulator

        scenario = Scenario.tiny("FCSN")
        problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())
        simulator = HEPSimulator(scenario)
        _, stats = simulator.simulate(problem.true_values(), scenario.icd_values[0])
        return stats

    def test_stats_carry_phase_keys_only_when_enabled(self, profiling_enabled):
        stats = self._stats()
        assert "phase_sharing_seconds" in stats
        assert "phase_advance_seconds" in stats
        assert stats["phase_advance_count"] == stats["events"]
        assert all(isinstance(v, float) for v in stats.values())

    def test_stats_have_no_phase_keys_by_default(self):
        stats = self._stats()
        assert not any(key.startswith("phase_") for key in stats)
