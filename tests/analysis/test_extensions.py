"""Extension experiments (generalisation, metric/noise ablations, parallel scaling).

These run at the ``tiny`` scenario scale with very small budgets: the goal
is to exercise the experiment plumbing end to end, not to reproduce the
quantitative shapes (the benchmark harness does that at larger budgets).
"""

import pytest

from repro.analysis import (
    ablation_accuracy_metrics,
    ablation_reference_noise,
    generalization_experiment,
    parallel_scaling_experiment,
)
from repro.analysis.tables import ExperimentResult
from repro.hepsim import GroundTruthGenerator

ICDS = (0.0, 0.5, 1.0)


@pytest.fixture(scope="module")
def generator():
    return GroundTruthGenerator(use_disk_cache=False)


class TestGeneralizationExperiment:
    def test_one_row_per_factor(self, generator):
        result = generalization_experiment(
            platform="FCSN", factors=(0.5, 1.0, 2.0), algorithm="random",
            icd_values=ICDS, budget_evaluations=15, seed=1,
            generator=generator, scale="tiny",
        )
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 3
        assert [row[0] for row in result.rows] == ["x0.5", "x1", "x2"]
        assert result.extra["worst_factor"] in (0.5, 1.0, 2.0)
        # Every cell is a percentage string.
        for row in result.rows:
            assert all(cell.endswith("%") for cell in row[1:])


class TestAccuracyMetricAblation:
    def test_each_metric_gets_a_row_scored_on_mre(self, generator):
        result = ablation_accuracy_metrics(
            platform="SCSN", algorithm="random", metrics=("mre", "rmse"),
            icd_values=ICDS, budget_evaluations=12, seed=1,
            generator=generator, scale="tiny",
        )
        assert [row[0] for row in result.rows] == ["MRE", "RMSE"]
        assert set(result.extra) == {"mre", "rmse"}
        for value in result.extra.values():
            assert value >= 0.0


class TestReferenceNoiseAblation:
    def test_rows_follow_the_noise_levels(self):
        result = ablation_reference_noise(
            platform="FCSN", algorithm="random", noise_levels=(0.0, 0.05),
            icd_values=ICDS, budget_evaluations=12, seed=1, scale="tiny",
        )
        assert [row[0] for row in result.rows] == ["0", "0.05"]
        for calibrated, human in result.extra.values():
            assert calibrated >= 0.0 and human >= 0.0


class TestParallelScalingExperiment:
    def test_serial_mode_counts_evaluations(self, generator):
        result = parallel_scaling_experiment(
            platform="FCSN", worker_counts=(1, 2), sampler="lhs",
            icd_values=ICDS, budget_seconds=1.0, seed=1,
            generator=generator, scale="tiny", mode="serial",
        )
        assert len(result.rows) == 2
        for key, cell in result.extra.items():
            assert cell["evaluations"] >= 1
