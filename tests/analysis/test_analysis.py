"""Survey dataset, table/figure rendering, and the experiment harness."""

import pytest

from repro.analysis.experiments import table1_survey, table2_platforms
from repro.analysis.figures import render_series, sample_series
from repro.analysis.survey import (
    PAPER_COUNTS,
    PublicationRecord,
    build_survey_dataset,
    summarize_survey,
)
from repro.analysis.tables import ExperimentResult, render_table


class TestSurvey:
    def test_dataset_reproduces_paper_counts(self):
        summary = summarize_survey(build_survey_dataset())
        assert summary.total == PAPER_COUNTS["total"]
        assert summary.simulation_only == PAPER_COUNTS["simulation_only"]
        assert summary.with_real_world == PAPER_COUNTS["with_real_world"]
        assert summary.no_comparison == PAPER_COUNTS["no_comparison"]
        assert summary.calibration_mentioned_at_best == PAPER_COUNTS["calibration_mentioned_at_best"]
        assert summary.calibration_documented == PAPER_COUNTS["calibration_documented"]

    def test_most_documented_calibrations_contribute_a_model(self):
        records = build_survey_dataset()
        documented = [r for r in records if r.documents_calibration]
        assert len(documented) == 10
        assert sum(r.contribution_is_simulation_model for r in documented) == 8

    def test_record_validation(self):
        with pytest.raises(ValueError):
            PublicationRecord("x", 2020, includes_real_world_results=True,
                              allows_comparison=True, mentions_calibration=False,
                              documents_calibration=True)
        with pytest.raises(ValueError):
            PublicationRecord("x", 2020, includes_real_world_results=False,
                              allows_comparison=True)

    def test_summary_as_dict(self):
        summary = summarize_survey(build_survey_dataset())
        assert summary.as_dict()["total"] == 114


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["A", "Method"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines if not set(line) <= {"-", "+"})) == 1
        assert "Method" in lines[0]

    def test_experiment_result_accessors(self):
        result = ExperimentResult(
            name="t", title="Title", headers=["Method", "SCFN"],
            rows=[["HUMAN", "23.2%"], ["RANDOM", "22.1%"]], notes="note",
        )
        assert result.cell("HUMAN", "SCFN") == "23.2%"
        assert result.column("Method") == ["HUMAN", "RANDOM"]
        assert "Title" in result.to_text()
        assert "note" in result.to_text()
        with pytest.raises(KeyError):
            result.cell("HUMAN", "missing")
        with pytest.raises(KeyError):
            result.cell("missing", "SCFN")


class TestFigures:
    def test_sample_series_step_function(self):
        series = [(1.0, 10.0), (2.0, 5.0), (4.0, 2.0)]
        sampled = sample_series(series, [0.5, 1.5, 3.0, 5.0])
        assert sampled[0] != sampled[0]  # NaN before the first point
        assert sampled[1:] == [10.0, 5.0, 2.0]

    def test_render_series_contains_legend_and_axes(self):
        art = render_series({"random": [(1.0, 10.0), (2.0, 4.0)],
                             "grid": [(1.5, 12.0), (3.0, 8.0)]})
        assert "random" in art and "grid" in art
        assert "s" in art.splitlines()[-2]

    def test_render_series_empty_raises(self):
        with pytest.raises(ValueError):
            render_series({})


class TestStaticExperiments:
    def test_table1(self):
        result = table1_survey()
        assert result.cell("Total publications examined", "Count") == 114

    def test_table2(self):
        result = table2_platforms()
        assert len(result.rows) == 4
        assert result.cell("FCSN", "WAN interface") == "1.00 Gbps"
