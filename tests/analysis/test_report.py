"""The aggregate reproduction-report generator."""

import pytest

from repro.analysis.report import DEFAULT_ORDER, collect_results, render_report, write_report


@pytest.fixture()
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table3.txt").write_text("== table3: MRE ==\nHUMAN | 23%\n")
    (directory / "table1.txt").write_text("== table1: survey ==\nTotal | 114\n")
    (directory / "custom_extra.txt").write_text("== custom: something else ==\nrow\n")
    (directory / "notes.json").write_text("{}")  # non-.txt files are ignored
    return directory


class TestCollectResults:
    def test_reads_only_txt_files(self, results_dir):
        collected = collect_results(results_dir)
        assert set(collected) == {"table1", "table3", "custom_extra"}
        assert "114" in collected["table1"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect_results(tmp_path / "does-not-exist") == {}


class TestRenderReport:
    def test_orders_paper_experiments_first(self, results_dir):
        text = render_report(collect_results(results_dir), generated_at="2026-06-14")
        table1_pos = text.index("Table I")
        table3_pos = text.index("Table III")
        extra_pos = text.index("custom_extra")
        assert table1_pos < table3_pos < extra_pos
        assert "2026-06-14" in text
        assert "```" in text

    def test_known_experiments_get_titles(self, results_dir):
        text = render_report(collect_results(results_dir))
        assert "## Table III — MRE per calibration method and platform" in text
        # Unknown experiments fall back to their file stem.
        assert "## custom_extra" in text

    def test_empty_results(self):
        text = render_report({})
        assert "No experiment outputs found" in text

    def test_default_order_covers_all_paper_tables(self):
        for name in ("table1", "table2", "table3", "table4", "table5", "table6", "figure2"):
            assert name in DEFAULT_ORDER


class TestWriteReport:
    def test_writes_markdown_file(self, results_dir, tmp_path):
        output = tmp_path / "nested" / "REPORT.md"
        path = write_report(results_dir, output)
        assert path == output
        content = output.read_text()
        assert content.startswith("# Reproduction report")
        assert "table3" in content or "Table III" in content
