"""Chaos end-to-end: calibration through injected failures and hangs.

The acceptance test of the fault-tolerance layer: a calibration with 20%
injected transient failures and one permanently hung evaluation must
complete with the *same best* as the clean run, record every permanent
failure in the store, and never wedge.  Every driver run happens on a
daemon thread under a hard join timeout, so a wedged run fails the test
(and the CI ``chaos`` job's ``timeout-minutes``) instead of stalling it.

The fault layout is deterministic: :class:`FaultyObjective` picks
failing/hanging points by hashing the parameter vector, so the seed/salt
pair below was chosen to give the 24-point trajectory 5 failing points
and exactly 1 hanging point, with the clean best un-faulted.
"""

import threading

import numpy as np

from repro.core import (
    AsyncCalibrator,
    BatchCalibrator,
    Calibrator,
    EvaluationBudget,
    FailurePolicy,
    Parameter,
    ParameterSpace,
    RetryPolicy,
)
from repro.service import InMemoryStore, StoreBackedCache
from repro.service.fleet.faults import FaultyObjective

SPACE = ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(2)])

#: chosen so the seed-0 24-point random trajectory holds 5 failing points
#: and exactly 1 hanging point, none of them the clean best (see module
#: docstring)
SEED = 0
SALT = 3
BUDGET = 24

RETRY = RetryPolicy(max_attempts=2, backoff=0.01, backoff_max=0.02)
PENALTY = FailurePolicy(penalty=1.0e6)
EVAL_TIMEOUT = 0.75


def base_objective(values):
    unit = SPACE.to_unit_array(values)
    return float(np.sum((unit - 0.37) ** 2)) * 100.0


def run_without_wedging(calibrator, timeout=90.0):
    """Run a driver on a daemon thread; a wedge fails the test instead of
    stalling the suite."""
    box = {}

    def target():
        try:
            box["result"] = calibrator.run()
        except BaseException as error:  # re-raised on the test thread
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    assert not thread.is_alive(), f"calibration wedged past the {timeout:g}s deadline"
    if "error" in box:
        raise box["error"]
    return box["result"]


def chaos_objective(fail_attempts=1):
    return FaultyObjective(
        base_objective,
        fail_fraction=0.2,
        fail_attempts=fail_attempts,
        hang_fraction=0.05,
        hang_seconds=600.0,
        salt=SALT,
    )


def clean_run():
    return BatchCalibrator(
        SPACE, base_objective, algorithm="random", workers=4, mode="serial",
        budget=EvaluationBudget(BUDGET), seed=SEED,
    ).run()


class TestBatchChaos:
    def test_completes_with_the_clean_best_and_records_the_hang(self):
        clean = clean_run()
        faulty = chaos_objective()
        hanging = [e.values for e in clean.history if faulty.is_hanging_point(e.values)]
        failing = [e.values for e in clean.history if faulty.is_failing_point(e.values)]
        assert len(hanging) == 1 and len(failing) == 5  # the chosen layout

        store = InMemoryStore()
        calibrator = BatchCalibrator(
            SPACE, faulty, algorithm="random", workers=4, mode="process",
            budget=EvaluationBudget(BUDGET), seed=SEED,
            cache=StoreBackedCache(store, "chaos"),
            retry_policy=RETRY, failure_policy=PENALTY, eval_timeout=EVAL_TIMEOUT,
        )
        result = run_without_wedging(calibrator)

        # Same budget, same best as the clean run: transient failures
        # recovered on retry, only the hung point became a penalty.
        assert result.evaluations == BUDGET
        assert result.best_value == clean.best_value
        assert result.best_values == clean.best_values
        failed = [e for e in result.history if e.failed]
        assert [e.values for e in failed] == hanging
        assert all(e.value == PENALTY.penalty for e in failed)
        # Retries were actually burned recovering the failing points.
        assert calibrator.evaluator.retries_total >= len(failing)
        # The permanent failure is quarantined in the store, as a timeout.
        assert store.failure_count() == 1
        stored = store.get_failure("chaos", hanging[0])
        assert stored is not None and stored.kind == "timeout"
        assert stored.attempts == RETRY.max_attempts

    def test_exhausted_transients_are_recorded_too(self):
        """With unrecoverable transient faults every failing point becomes
        a recorded failure — and the run still completes on budget."""
        clean = clean_run()
        faulty = chaos_objective(fail_attempts=10)  # never recovers in 2 attempts
        store = InMemoryStore()
        calibrator = BatchCalibrator(
            SPACE, faulty, algorithm="random", workers=4, mode="process",
            budget=EvaluationBudget(BUDGET), seed=SEED,
            cache=StoreBackedCache(store, "chaos"),
            retry_policy=RETRY, failure_policy=PENALTY, eval_timeout=EVAL_TIMEOUT,
        )
        result = run_without_wedging(calibrator)
        assert result.evaluations == BUDGET
        assert result.best_value == clean.best_value  # the best is un-faulted
        assert sum(1 for e in result.history if e.failed) == 6  # 5 failing + 1 hung
        assert store.failure_count() == 6


class TestAsyncChaos:
    def test_completes_with_the_clean_best(self):
        clean = clean_run()
        store = InMemoryStore()
        calibrator = AsyncCalibrator(
            SPACE, chaos_objective(), algorithm="random", workers=4, mode="process",
            budget=EvaluationBudget(BUDGET), seed=SEED,
            cache=StoreBackedCache(store, "chaos"),
            retry_policy=RETRY, failure_policy=PENALTY, eval_timeout=EVAL_TIMEOUT,
        )
        result = run_without_wedging(calibrator)
        assert result.evaluations == BUDGET
        # Random is async-native: the asked point set is the rng's alone,
        # so it matches the clean trajectory regardless of completion order.
        assert sorted(e.unit for e in result.history) == sorted(
            e.unit for e in clean.history
        )
        assert result.best_value == clean.best_value
        assert result.best_values == clean.best_values
        assert store.failure_count() == 1


class TestQuarantineAcrossJobs:
    def test_second_job_skips_the_poison_point_without_hanging(self):
        """A job sharing the store never re-evaluates (or waits on) the
        hung point a previous job diagnosed: it replays warm and fast."""
        store = InMemoryStore()
        first = BatchCalibrator(
            SPACE, chaos_objective(), algorithm="random", workers=4, mode="process",
            budget=EvaluationBudget(BUDGET), seed=SEED,
            cache=StoreBackedCache(store, "chaos"),
            retry_policy=RETRY, failure_policy=PENALTY, eval_timeout=EVAL_TIMEOUT,
        )
        result = run_without_wedging(first)
        assert store.failure_count() == 1

        # The second job runs the *hanging* objective with NO timeout: it
        # completes only because the quarantine skips the poison point.
        # Warm-store accounting (count/record hits) makes the replay
        # terminate on the same 24 steps.
        second = Calibrator(
            SPACE, chaos_objective(), algorithm="random",
            budget=EvaluationBudget(BUDGET), seed=SEED,
            cache=StoreBackedCache(store, "chaos"),
            count_cache_hits=True, record_cache_hits=True,
            failure_policy=PENALTY,
        )
        replay = run_without_wedging(second, timeout=60.0)
        assert replay.best_value == result.best_value
        assert store.failure_count() == 1  # nothing new was diagnosed
        assert sum(1 for e in replay.history if e.failed) == 1  # the skip
        assert sum(1 for e in replay.history if e.cached) == BUDGET - 1
