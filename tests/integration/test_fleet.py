"""Cross-process fleet integration: real worker subprocesses, one SQLite
store, an HTTP front-end — and deliberately killed workers.

The acceptance bar for the distributed path:

* a calibration served by two worker processes produces the *same bytes*
  as the single-process serial run (ordered tells make completion order
  irrelevant);
* no point is ever evaluated twice across the fleet (the store's lease
  protocol is the only arbiter, and it is enough);
* a worker killed while holding a live lease (``os._exit``, no cleanup —
  the closest a process gets to SIGKILL-ing itself) delays the job by at
  most the lease TTL and costs zero duplicate evaluations;
* a worker that dies *after* evaluating but *before* publishing costs
  exactly one duplicate evaluation — the computed value died with it.

Nothing here sleeps for longer than the lease TTL: the tests block on
process exits and on the served job's own completion.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import Calibrator
from repro.service import JobSpool, open_store
from repro.service.case_study import CaseStudyRequestFactory
from repro.service.fleet.faults import DIED_IN_PUBLISH, KILLED_ON_CLAIM

SRC = Path(__file__).resolve().parents[2] / "src"
LEASE_TTL = 2.0
JOB = "job-0001"


def spawn(*argv, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli.main", *argv],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def run(*argv, cwd, timeout=120):
    process = spawn(*argv, cwd=cwd)
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        pytest.fail(f"command {argv} timed out:\n{process.communicate()[0]}")
    return process.returncode, output


def wait_exit(process, timeout=120, label="process"):
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        pytest.fail(f"{label} did not exit in {timeout}s:\n{process.communicate()[0]}")
    return process.returncode, output


def submit_job(cwd, evaluations=10, seed=3):
    code, output = run(
        "submit", "--serve-dir", "spool", "--algorithm", "random",
        "--evaluations", str(evaluations), "--seed", str(seed), cwd=cwd,
    )
    assert code == 0, output
    assert JOB in output


def start_fleet(cwd):
    """Launch ``repro fleet`` on an ephemeral port; returns (process, url)."""
    process = spawn(
        "fleet", "--serve-dir", "spool", "--port", "0", "--url-file", "url.txt",
        "--workers", "1", cwd=cwd,
    )
    url_file = cwd / "url.txt"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if process.poll() is not None:
            pytest.fail(f"fleet died on startup:\n{process.communicate()[0]}")
        if url_file.exists() and url_file.read_text().strip():
            return process, url_file.read_text().strip()
        time.sleep(0.1)
    process.kill()
    pytest.fail("fleet front-end never wrote its URL file")


def start_worker(cwd, url, name, *extra):
    return spawn(
        "worker", "--url", url, "--store", "spool/store.db",
        "--lease-ttl", str(LEASE_TTL), "--poll", "0.2",
        "--max-idle", "3", "--stats", f"{name}.json", *extra, cwd=cwd,
    )


def worker_stats(cwd, name):
    return json.loads((cwd / f"{name}.json").read_text())


def store_entries(cwd):
    with open_store(cwd / "spool" / "store.db") as store:
        return len(store)


def serial_baseline(cwd, job_id=JOB):
    """The single-process serial run of exactly what was submitted."""
    spec = JobSpool(cwd / "spool").load(job_id)
    request = CaseStudyRequestFactory().request(spec)
    return Calibrator(
        request.space,
        request.objective,
        algorithm=request.algorithm,
        budget=request.budget,
        seed=request.seed,
        algorithm_options=request.algorithm_options,
    ).run()


class TestTwoWorkerFleet:
    def test_two_workers_reproduce_the_serial_run_without_duplicates(self, tmp_path):
        submit_job(tmp_path, evaluations=10)
        fleet, url = start_fleet(tmp_path)
        workers = []
        try:
            # Before any worker exists the job is running and its tasks are
            # open: `repro status --url` must show both.
            status_out = ""
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                code, status_out = run("status", "--url", url, cwd=tmp_path)
                assert code == 0, status_out
                if JOB in status_out and "open evaluation task" in status_out:
                    break
                time.sleep(0.2)
            assert JOB in status_out
            assert "fleet:" in status_out

            workers = [start_worker(tmp_path, url, f"w{i}") for i in (1, 2)]
            fleet_code, fleet_out = wait_exit(fleet, label="fleet")
            assert fleet_code == 0, fleet_out
            assert "served 1 fleet job(s)" in fleet_out
            for worker in workers:
                wait_exit(worker, label="worker")
        finally:
            fleet.kill()
            for worker in workers:
                worker.kill()

        result = JobSpool(tmp_path / "spool").read_result(JOB)
        serial = serial_baseline(tmp_path)
        assert result.best_value == serial.best_value
        assert json.dumps(result.best_values, sort_keys=True) == json.dumps(
            serial.best_values, sort_keys=True
        )
        assert [(e.unit, e.value) for e in result.history] == [
            (e.unit, e.value) for e in serial.history
        ]

        # Zero duplicate simulator invocations, fleet-wide: every store
        # entry was paid for exactly once by exactly one worker.
        evaluations = sum(worker_stats(tmp_path, w)["evaluations"] for w in ("w1", "w2"))
        assert evaluations == store_entries(tmp_path) == 10


class TestWorkerDeath:
    def test_killed_worker_lease_expires_and_the_fleet_recovers(self, tmp_path):
        """Worker A dies (exit 43, no cleanup) holding a live lease on its
        first claim; worker B must wait out the TTL, reclaim the point and
        finish the job — with zero duplicate evaluations, because A died
        *before* evaluating."""
        submit_job(tmp_path, evaluations=8)
        fleet, url = start_fleet(tmp_path)
        victim = start_worker(
            tmp_path, url, "victim", "--fault-kill-after-claims", "1"
        )
        victim_code, victim_out = wait_exit(victim, label="victim worker")
        assert victim_code == KILLED_ON_CLAIM, victim_out

        # The victim's lease is still live in the store right now; the
        # survivor must not steal it before the TTL runs out.
        survivor = start_worker(tmp_path, url, "survivor")
        try:
            fleet_code, fleet_out = wait_exit(fleet, label="fleet")
            assert fleet_code == 0, fleet_out
            wait_exit(survivor, label="survivor worker")
        finally:
            fleet.kill()
            survivor.kill()

        spool = JobSpool(tmp_path / "spool")
        assert spool.load(JOB)["status"] == "done"
        result = spool.read_result(JOB)
        serial = serial_baseline(tmp_path)
        assert result.best_value == serial.best_value

        victim_stats = worker_stats(tmp_path, "victim")
        survivor_stats = worker_stats(tmp_path, "survivor")
        assert victim_stats["claims"] == 1
        assert victim_stats["evaluations"] == 0, "death precedes evaluation"
        assert survivor_stats["lease_skips"] >= 1, (
            "the survivor must have respected the dead worker's live lease"
        )
        # Zero duplicates: the dead claim cost nothing.
        total = victim_stats["evaluations"] + survivor_stats["evaluations"]
        assert total == store_entries(tmp_path) == 8

    def test_dropped_publish_costs_exactly_one_duplicate(self, tmp_path):
        """Worker A evaluates its first claim, then dies (exit 44) before
        the result reaches the store or the front-end.  The value died
        with the process: recovery re-evaluates that one point — exactly
        one duplicate, never more."""
        submit_job(tmp_path, evaluations=8)
        fleet, url = start_fleet(tmp_path)
        victim = start_worker(
            tmp_path, url, "victim", "--fault-drop-publish", "1"
        )
        victim_code, victim_out = wait_exit(victim, label="victim worker")
        assert victim_code == DIED_IN_PUBLISH, victim_out

        survivor = start_worker(tmp_path, url, "survivor")
        try:
            fleet_code, fleet_out = wait_exit(fleet, label="fleet")
            assert fleet_code == 0, fleet_out
            wait_exit(survivor, label="survivor worker")
        finally:
            fleet.kill()
            survivor.kill()

        spool = JobSpool(tmp_path / "spool")
        assert spool.load(JOB)["status"] == "done"
        assert spool.read_result(JOB).best_value == serial_baseline(tmp_path).best_value

        victim_stats = worker_stats(tmp_path, "victim")
        survivor_stats = worker_stats(tmp_path, "survivor")
        assert victim_stats["evaluations"] == 1, "the victim paid for one evaluation"
        assert victim_stats["publishes"] == 0, "...but its result never landed"
        total = victim_stats["evaluations"] + survivor_stats["evaluations"]
        assert total == store_entries(tmp_path) + 1, (
            "a dropped publish costs exactly one duplicate evaluation"
        )
