"""End-to-end integration tests: the whole pipeline on small scenarios.

These tests exercise the complete stack — ground-truth generation, the
HUMAN procedure, the calibration framework driving the case-study
simulator — and check the paper's qualitative claims at a very small scale
(they are the fast counterpart of the benchmark harness, which runs the
same experiments at larger budgets).
"""

import pytest

from repro.analysis.experiments import (
    ablation_extension_algorithms,
    table3_simulation_accuracy,
)
from repro.core import EvaluationBudget, TimeBudget
from repro.hepsim.calibration import CaseStudyProblem
from repro.hepsim.groundtruth import GroundTruthGenerator
from repro.hepsim.scenario import Scenario


@pytest.fixture(scope="module")
def generator():
    return GroundTruthGenerator(use_disk_cache=False)


@pytest.fixture(scope="module")
def fcsn_problem():
    # The calib scale (with its shipped ground-truth cache) keeps the
    # case-study phenomenology strong enough for claim-level assertions
    # while one objective evaluation stays in the tens of milliseconds.
    scenario = Scenario.calib("FCSN", icd_values=(0.0, 0.5, 1.0))
    return CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())


class TestFastCachePlatformClaims:
    def test_automated_calibration_beats_human_on_fc_platform(self, fcsn_problem):
        """The paper's headline claim, at test scale: an automated
        calibration with a small budget already beats the manual one on a
        fast-cache platform."""
        human_mre = fcsn_problem.evaluate(fcsn_problem.human_values())
        result = fcsn_problem.calibrate(
            algorithm="gdfix", budget=EvaluationBudget(200), seed=2
        )
        assert result.best_value < human_mre

    def test_calibrated_page_cache_is_much_faster_than_human_assumption(self, fcsn_problem):
        """Section IV.C.1: the automated methods find page-cache values about
        an order of magnitude above the manual 1 GBps assumption."""
        result = fcsn_problem.calibrate(
            algorithm="gdfix", budget=EvaluationBudget(200), seed=2
        )
        values = fcsn_problem.calibrated_values(result)
        human = fcsn_problem.human_values()
        if result.best_value < 15.0:
            assert values.page_cache_bandwidth > 3.0 * human.page_cache_bandwidth

    def test_time_budget_produces_nonincreasing_convergence(self, fcsn_problem):
        result = fcsn_problem.calibrate(
            algorithm="random", budget=TimeBudget(2.0), seed=0
        )
        curve = [v for _, v in result.history.best_over_time()]
        assert curve, "no evaluation completed within the time budget"
        assert all(curve[i + 1] <= curve[i] + 1e-9 for i in range(len(curve) - 1))


class TestSlowCachePlatformClaims:
    def test_human_and_automated_are_comparable_on_sc_platform(self):
        """On the slow-cache platforms the HDD behaviour the simulator does
        not model limits everyone: automated calibration is on par with the
        manual one (within a small factor), not dramatically better."""
        scenario = Scenario.calib("SCSN", icd_values=(0.0, 0.5, 1.0))
        problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())
        human_mre = problem.evaluate(problem.human_values())
        result = problem.calibrate(algorithm="gdfix", budget=EvaluationBudget(200), seed=2)
        assert result.best_value < 2.5 * human_mre

    def test_bottleneck_parameter_agreement(self, generator):
        """Table IV's shape: two different algorithms agree on the disk
        bandwidth (the SC bottleneck) within a small factor."""
        scenario = Scenario.tiny("SCSN", icd_values=(0.0, 0.5, 1.0))
        problem = CaseStudyProblem.create(scenario, generator=generator)
        disks = []
        for algorithm in ("random", "gdfix"):
            result = problem.calibrate(
                algorithm=algorithm, budget=EvaluationBudget(150), seed=3
            )
            disks.append(problem.calibrated_values(result).disk_bandwidth)
        assert max(disks) / min(disks) < 4.0


class TestExperimentHarness:
    def test_table3_smoke_at_tiny_scale(self, generator):
        result = table3_simulation_accuracy(
            platforms=("FCSN",),
            methods=("human", "random"),
            icd_values=(0.0, 1.0),
            budget_evaluations=25,
            generator=generator,
            scale="tiny",
        )
        assert result.headers == ["Method", "FCSN"]
        assert len(result.rows) == 2
        assert result.extra["mre"][("random", "FCSN")] >= 0

    def test_extension_algorithms_smoke(self, generator):
        result = ablation_extension_algorithms(
            platform="FCSN",
            algorithms=("random", "lhs"),
            icd_values=(0.0, 1.0),
            budget_evaluations=15,
            generator=generator,
            scale="tiny",
        )
        assert set(result.extra) == {"random", "lhs", "human"}


class TestFullSiteSmoke:
    def test_calib_scale_ground_truth_is_cached_in_package_data(self):
        """The shipped ground-truth cache loads without regenerating (fast)."""
        generator = GroundTruthGenerator()
        scenario = Scenario.calib("FCSN", icd_values=(0.0, 1.0))
        import time

        start = time.perf_counter()
        trace = generator.get(scenario)
        elapsed = time.perf_counter() - start
        assert trace.average_job_time("node3", 0.0) > trace.average_job_time("node3", 1.0)
        assert elapsed < 2.0, "expected the shipped JSON cache to be used"
