"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that legacy editable installs (``pip install -e .``) work on environments
whose setuptools/pip cannot build PEP 660 editable wheels offline.
"""

from setuptools import setup

setup()
