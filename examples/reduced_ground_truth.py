#!/usr/bin/env python3
"""Calibrate with less ground-truth data (Table V).

Collecting ground-truth executions of a production system is expensive, so
the paper asks: can a good calibration be computed from a *subset* of the
ICD values?  This example calibrates GDFIX on every 1-, 2- and 3-element
subset of {0.0, 0.3, 0.5, 0.7, 1.0}, always evaluating the result against
the full ICD grid, and reports the best / median / worst MRE per subset
size — reproducing the paper's observation that two or three *diverse* ICD
values are as good as (sometimes better than) the full grid.

Run it with:  python examples/reduced_ground_truth.py [--seconds 8]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.experiments import table5_icd_subsets
from repro.hepsim.groundtruth import GroundTruthGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=8.0,
                        help="wall-clock budget per calibration")
    parser.add_argument("--platform", default="FCSN",
                        choices=("SCFN", "FCFN", "SCSN", "FCSN"))
    parser.add_argument("--algorithm", default="gdfix")
    args = parser.parse_args()

    generator = GroundTruthGenerator()
    result = table5_icd_subsets(
        platform=args.platform,
        algorithm=args.algorithm,
        budget_seconds=args.seconds,
        generator=generator,
    )
    print(result.to_text())

    print("\nPer-subset detail (ICD subset -> MRE when evaluated on the full grid):")
    for size, scores in result.extra["detail"].items():
        print(f"  subsets of size {size}:")
        for subset, mre in scores:
            print(f"    {tuple(round(i, 1) for i in subset)}: {mre:.2f}%")


if __name__ == "__main__":
    main()
