#!/usr/bin/env python3
"""Explore the simulation speed / accuracy trade-off (Table VI).

The case-study simulator's block size ``B`` and buffer size ``b`` control
how many discrete events are simulated per job (``O(s/B + s/b)`` for ``s``
input bytes).  Small values make the simulation slower but more
fine-grained; large values make it fast but coarse.  The paper's finding
is that — under a fixed wall-clock calibration budget — the *coarsest*
granularity gives the best accuracy, because the calibration can explore
the parameter space much more thoroughly.

Run it with:  python examples/speed_accuracy_tradeoff.py [--seconds 12]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.experiments import table6_speed_accuracy
from repro.hepsim.groundtruth import GroundTruthGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=12.0,
                        help="wall-clock budget per calibration")
    parser.add_argument("--platform", default="FCSN",
                        choices=("SCFN", "FCFN", "SCSN", "FCSN"))
    args = parser.parse_args()

    generator = GroundTruthGenerator()
    result = table6_speed_accuracy(
        platform=args.platform,
        budget_seconds=args.seconds,
        generator=generator,
    )
    print(result.to_text())

    detail = result.extra["detail"]
    print("\nEvaluations that fit in the budget at each granularity:")
    for key, cell in detail.items():
        per_algo = ", ".join(
            f"{name}={int(cell[f'{name}_evaluations'])}"
            for name in ("gdfix", "grid", "random")
            if f"{name}_evaluations" in cell
        )
        print(f"  B/b = {key}: {per_algo}")


if __name__ == "__main__":
    main()
