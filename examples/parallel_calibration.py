#!/usr/bin/env python3
"""Parallel candidate evaluation: the paper's one-simulation-per-core protocol.

In the paper "each algorithm executes one simulation on each core of a
dedicated ... 40-core CPU".  This example shows the same protocol with the
:class:`~repro.core.parallel.ParallelCalibrator`: batches of candidate
calibrations drawn from a space-filling design are evaluated concurrently
in worker processes, and the number of evaluations that fit into a fixed
wall-clock budget grows with the worker count.

Run it with:  python examples/parallel_calibration.py [--seconds 10 --workers 1 2 4]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import ParallelCalibrator, TimeBudget
from repro.hepsim import CaseStudyProblem, GroundTruthGenerator, Scenario
from repro.hepsim.scenario import REDUCED_ICD_VALUES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platform", default="FCSN",
                        choices=("SCFN", "FCFN", "SCSN", "FCSN"))
    parser.add_argument("--seconds", type=float, default=10.0,
                        help="wall-clock budget per run")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--sampler", default="lhs", choices=("uniform", "lhs", "sobol", "halton"))
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    scenario = Scenario.calib(args.platform, icd_values=REDUCED_ICD_VALUES)
    problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())
    human_mre = problem.evaluate(problem.human_values())
    print(f"platform {args.platform}; HUMAN MRE = {human_mre:.2f}%; "
          f"budget {args.seconds:g} s per run; sampler {args.sampler}\n")

    print(f"{'workers':>7s} {'evaluations':>12s} {'best MRE':>10s} {'elapsed':>9s}")
    for workers in args.workers:
        calibrator = ParallelCalibrator(
            problem.space,
            problem.objective,          # picklable CaseStudyObjective
            sampler=args.sampler,
            workers=workers,
            mode="process" if workers > 1 else "serial",
            budget=TimeBudget(args.seconds),
            seed=args.seed,
        )
        result = calibrator.run()
        print(f"{workers:7d} {result.evaluations:12d} {result.best_value:9.2f}% "
              f"{result.elapsed:8.1f}s")

    print("\nMore workers evaluate more candidates in the same wall-clock time, "
          "which is exactly why the paper's protocol dedicates one core per "
          "simulation; the best MRE should not get worse as workers increase.")


if __name__ == "__main__":
    main()
