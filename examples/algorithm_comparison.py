#!/usr/bin/env python3
"""Compare every calibration algorithm on one platform.

The paper deliberately restricts itself to three simple algorithms (GRID,
RANDOM, gradient descent) and leaves "Machine Learning algorithms" such as
Bayesian optimization to future work.  The reproduction implements that
future work; this example runs the full roster — the paper's trio plus
Latin hypercube, Sobol, Nelder-Mead, pattern search, coordinate descent,
simulated annealing, differential evolution, CMA-ES, TPE and GP-based
Bayesian optimization — under the same evaluation budget and prints a
leaderboard against the HUMAN manual calibration.

Run it with:  python examples/algorithm_comparison.py [--evaluations 150]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import EvaluationBudget
from repro.hepsim import CaseStudyProblem, GroundTruthGenerator, Scenario
from repro.hepsim.scenario import REDUCED_ICD_VALUES

ALGORITHMS = (
    "grid", "random", "gdfix", "gddyn",          # the paper's algorithms
    "lhs", "sobol", "coordinate", "pattern",      # simple extensions
    "nelder-mead", "annealing", "de", "cmaes",    # classic optimizers
    "tpe", "bayesian",                            # model-based (future work)
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platform", default="FCSN",
                        choices=("SCFN", "FCFN", "SCSN", "FCSN"))
    parser.add_argument("--evaluations", type=int, default=150,
                        help="simulator invocations per algorithm")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    scenario = Scenario.calib(args.platform, icd_values=REDUCED_ICD_VALUES)
    problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())

    rows = [("HUMAN", problem.evaluate(problem.human_values()), 0, 0.0)]
    for algorithm in ALGORITHMS:
        result = problem.calibrate(
            algorithm=algorithm, budget=EvaluationBudget(args.evaluations), seed=args.seed
        )
        rows.append((algorithm.upper(), result.best_value, result.evaluations, result.elapsed))
        print(f"  {algorithm:12s} done: MRE {result.best_value:6.2f}%  ({result.elapsed:.1f} s)")

    rows.sort(key=lambda r: r[1])
    print(f"\nLeaderboard for platform {args.platform} "
          f"({args.evaluations} simulator invocations each):")
    print(f"{'rank':>4s}  {'method':14s} {'MRE':>8s} {'evals':>6s} {'time':>8s}")
    for rank, (name, mre, evals, elapsed) in enumerate(rows, start=1):
        print(f"{rank:4d}  {name:14s} {mre:7.2f}% {evals:6d} {elapsed:7.1f}s")

    print("\nExpected shape: every automated method beats HUMAN; the simple methods "
          "are already competitive because the search space has only a handful of "
          "dimensions (the paper's own conclusion).")


if __name__ == "__main__":
    main()
