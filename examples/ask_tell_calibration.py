#!/usr/bin/env python3
"""Ask/tell calibration: hand-rolled driver loops, batching, resume.

Every calibration algorithm is a *proposal machine*: ``ask`` for
candidates, evaluate them however you like, ``tell`` the results back.
This example drives algorithms without any Calibrator at all:

1. a minimal serial loop (what ``Calibrator.run()`` does internally);
2. a batched loop evaluating a whole CMA-ES generation per round (what
   ``BatchCalibrator`` does with a process pool);
3. checkpoint/resume: snapshot the search mid-run with ``state_dict()``,
   rebuild a fresh instance and finish the identical trajectory.

Run it with:  python examples/ask_tell_calibration.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core import Parameter, ParameterSpace, get_algorithm


def make_problem():
    """A 3-parameter toy problem (unit-space quadratic bowl at 0.37)."""
    space = ParameterSpace([Parameter(f"p{i}", 2.0**10, 2.0**30) for i in range(3)])

    def objective(values):
        unit = space.to_unit_array(values)
        return float(np.sum((unit - 0.37) ** 2)) * 100.0

    return space, objective


def evaluate(space, objective, candidate):
    """Unit-cube candidate -> objective value (what evaluate_unit does)."""
    return objective(space.from_unit_array(space.clip_unit(candidate)))


def serial_loop() -> None:
    """The paper's blocking loop, spelled out in ask/tell verbs."""
    space, objective = make_problem()
    algorithm = get_algorithm("annealing")  # any registry name works
    algorithm.setup(space)
    rng = np.random.default_rng(0)

    best = float("inf")
    evaluations = 0
    while evaluations < 100 and not algorithm.done():
        for candidate in algorithm.ask(rng, 1):
            value = evaluate(space, objective, candidate)
            algorithm.tell([candidate], [value])
            evaluations += 1
            best = min(best, value)
    print(f"serial ask/tell : {evaluations} evaluations, best {best:.4f}")


def batched_loop() -> None:
    """Whole CMA-ES generations per round — the BatchCalibrator shape.

    ``ask(rng, n)`` treats ``n`` as capacity: asking for a big batch
    drains the whole pending generation, which a real driver hands to a
    process pool (``repro.core.parallel.BatchCalibrator``) or a cluster.
    """
    space, objective = make_problem()
    # get_algorithm forwards constructor kwargs — no manual import needed.
    algorithm = get_algorithm("cmaes", population_size=8)
    algorithm.setup(space)
    rng = np.random.default_rng(0)

    best = float("inf")
    evaluations = 0
    while evaluations < 96:
        generation = algorithm.ask(rng, 64)  # the full pending generation
        values = [evaluate(space, objective, c) for c in generation]  # parallel here
        algorithm.tell(generation, values)
        evaluations += len(generation)
        best = min(best, min(values))
        print(f"  generation of {len(generation):2d} -> best so far {best:.5f}")
    print(f"batched ask/tell: {evaluations} evaluations, best {best:.5f}")


def checkpoint_and_resume() -> None:
    """Stop after 40 evaluations, resume a fresh instance, finish identically."""
    space, objective = make_problem()

    def drive(algorithm, rng, n):
        trace = []
        while len(trace) < n and not algorithm.done():
            for candidate in algorithm.ask(rng, 1):
                value = evaluate(space, objective, candidate)
                algorithm.tell([candidate], [value])
                trace.append(value)
                if len(trace) == n:
                    break
        return trace

    # Uninterrupted reference run.
    reference = get_algorithm("gdfix")
    reference.setup(space)
    rng = np.random.default_rng(7)
    full_trace = drive(reference, rng, 100)

    # Interrupted run: snapshot algorithm + rng state at evaluation 40.
    first = get_algorithm("gdfix")
    first.setup(space)
    rng = np.random.default_rng(7)
    head = drive(first, rng, 40)
    snapshot = json.dumps({
        "algorithm": first.state_dict(),
        "rng": rng.bit_generator.state,
    })  # JSON: this is exactly what the service spools to disk

    # A fresh process would start here: rebuild and continue.
    state = json.loads(snapshot)
    resumed = get_algorithm("gdfix")
    resumed.setup(space)
    resumed.load_state_dict(state["algorithm"])
    rng2 = np.random.default_rng()
    rng2.bit_generator.state = state["rng"]
    tail = drive(resumed, rng2, 60)

    identical = head + tail == full_trace
    print(f"resume          : 40 + 60 evaluations, trajectory identical: {identical}")
    assert identical


def main() -> None:
    serial_loop()
    batched_loop()
    checkpoint_and_resume()


if __name__ == "__main__":
    main()
