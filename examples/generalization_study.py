#!/usr/bin/env python3
"""How far does a calibration generalise beyond its ground-truth workload?

Section IV.C.2 warns that a calibration computed from a workload with one
bottleneck "is only valid for simulating the execution of workloads with
the same ratio of compute to data volumes as the ground-truth workload".
This example measures that: the simulator is calibrated on the base
workload, then the calibrated values, the HUMAN values and the hidden true
values are scored against ground truth generated for workloads whose
per-byte compute volume is scaled by several factors.

Run it with:  python examples/generalization_study.py [--factors 0.25 1 4]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import EvaluationBudget
from repro.hepsim import GroundTruthGenerator, generalization_study
from repro.hepsim.scenario import REDUCED_ICD_VALUES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platform", default="FCSN",
                        choices=("SCFN", "FCFN", "SCSN", "FCSN"))
    parser.add_argument("--factors", type=float, nargs="+", default=[0.25, 1.0, 4.0],
                        help="compute-to-data ratio factors to evaluate")
    parser.add_argument("--algorithm", default="random")
    parser.add_argument("--evaluations", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    study = generalization_study(
        platform=args.platform,
        factors=tuple(args.factors),
        algorithm=args.algorithm,
        budget=EvaluationBudget(args.evaluations),
        icd_values=REDUCED_ICD_VALUES,
        seed=args.seed,
        generator=GroundTruthGenerator(),
        scale="calib",
    )

    print(f"calibrated on platform {args.platform} at ratio x1 with "
          f"{args.algorithm.upper()} ({args.evaluations} evaluations)\n")
    print(f"{'ratio':>8s} {'calibrated':>12s} {'HUMAN':>10s} {'true values':>12s}")
    for factor, calibrated, human, true in study.summary_rows():
        print(f"{'x' + format(factor, 'g'):>8s} {calibrated:11.2f}% {human:9.2f}% {true:11.2f}%")

    print(f"\nlargest degradation at ratio x{study.worst_factor():g}")
    print("Expected shape: the automated calibration is best at x1 and degrades away "
          "from it (non-bottleneck parameters were never constrained), while the true "
          "values stay accurate at every ratio — the paper's generalisability caveat.")


if __name__ == "__main__":
    main()
