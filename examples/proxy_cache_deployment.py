#!/usr/bin/env python3
"""Cache-deployment study with the substrate API (the paper's motivation).

The case study exists because "CMS researchers need to compare different
cache deployment options in terms of the performance boost that caching
can bring".  This example uses the substrate layer directly (no
calibration involved) to run exactly that kind of study: a compute site
reads files from a remote storage site through an XRootD-style proxy
cache, and we sweep the proxy capacity to see how the hit rate and the
workload makespan respond.

Run it with:  python examples/proxy_cache_deployment.py [--capacities 0 2 4 8]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.simgrid import ActivityTracer, Platform
from repro.wrench import DataFile, ProxyCacheService, SimpleStorageService

GB = 1e9
FILE_SIZE = 0.427 * GB          # the case study's ~427 MB input files
UNIQUE_FILES = 12               # distinct files in the working set
ACCESSES_PER_JOB = 6            # each job reads 6 files (with reuse)
JOBS = 8
WAN_BANDWIDTH = 0.125 * GB      # 1 Gbps WAN, in byte/s
DISK_BANDWIDTH = 0.15 * GB


def run_once(capacity_files: int) -> dict:
    """Run the workload with a proxy able to hold ``capacity_files`` files."""
    platform = Platform("cache-study")
    storage_host = platform.add_host("storage", 1e9, cores=4)
    proxy_host = platform.add_host("proxy", 1e9, cores=4)
    origin_disk = platform.add_disk(storage_host, "origin_disk", DISK_BANDWIDTH)
    proxy_disk = platform.add_disk(proxy_host, "proxy_disk", DISK_BANDWIDTH)
    wan = platform.add_link("wan", WAN_BANDWIDTH, latency=0.02)
    platform.add_route(storage_host, proxy_host, [wan])

    origin = SimpleStorageService("origin", storage_host, origin_disk, buffer_size=32e6)
    capacity = capacity_files * FILE_SIZE if capacity_files else None
    proxy = ProxyCacheService(
        "proxy", proxy_host, proxy_disk, origin,
        capacity=capacity if capacity_files else FILE_SIZE / 2,  # ~0 capacity: everything bypasses
        buffer_size=32e6,
    )

    files = [DataFile(f"input{i}", FILE_SIZE) for i in range(UNIQUE_FILES)]
    for file in files:
        origin.add_file(file)

    tracer = ActivityTracer()
    platform.engine.add_observer(tracer)

    def job(job_index: int):
        # Deterministic access pattern with locality: job j reads files
        # j, j+1, ... modulo the working set, so consecutive jobs share files.
        for k in range(ACCESSES_PER_JOB):
            file = files[(job_index + k) % UNIQUE_FILES]
            yield from proxy.fetch_file(file, platform)

    for j in range(JOBS):
        platform.engine.add_process(job(j), f"job{j}")
    platform.engine.run()

    return {
        "capacity_files": capacity_files,
        "makespan": platform.engine.now,
        "hit_rate": proxy.hit_rate,
        "evictions": proxy.evictions,
        "wan_busy": tracer.busy_time("network"),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacities", type=int, nargs="+", default=[0, 2, 4, 8, 12],
                        help="proxy capacity in number of ~427 MB files (0 = no caching)")
    args = parser.parse_args()

    print(f"{JOBS} jobs x {ACCESSES_PER_JOB} file reads, {UNIQUE_FILES} distinct files of "
          f"{FILE_SIZE / 1e6:.0f} MB, 1 Gbps WAN\n")
    print(f"{'capacity':>9s} {'makespan':>10s} {'hit rate':>9s} {'evictions':>10s} {'WAN busy':>10s}")
    for capacity in args.capacities:
        stats = run_once(capacity)
        print(f"{capacity:9d} {stats['makespan']:9.1f}s {stats['hit_rate']:8.1%} "
              f"{stats['evictions']:10d} {stats['wan_busy']:9.1f}s")

    print("\nExpected shape: the makespan and the WAN busy time drop as the proxy "
          "capacity grows, and flatten once the whole working set fits (hit rate "
          "saturates) — the cache-deployment trade-off the CMS researchers want "
          "to explore in simulation.")


if __name__ == "__main__":
    main()
