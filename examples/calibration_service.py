#!/usr/bin/env python3
"""The calibration service: jobs over a shared, persistent evaluation store.

The paper's protocol runs one calibration at a time and throws its
evaluations away; the service subsystem (:mod:`repro.service`) keeps them
in a content-addressed store shared across jobs, so repeated or concurrent
calibrations of the same scenario reuse each other's simulations.  This
example demonstrates the whole surface:

1. open a persistent (JSON Lines) evaluation store;
2. start a :class:`~repro.service.server.CalibrationServer` with a bounded
   worker pool and an event subscriber;
3. submit a cold job for the tiny case-study scenario and watch it fill
   the store;
4. submit the same job again — the warm run answers every evaluation from
   the store, reproduces the cold result exactly and finishes in
   milliseconds;
5. submit a *different* algorithm on the same scenario — its evaluations
   land in the same store (any point it shares with earlier jobs is free,
   and everything it computes is banked for future jobs).

The CLI flavour of the same workflow is::

    repro submit --serve-dir runs/ --platform FCSN --scale tiny --evaluations 40
    repro serve  --serve-dir runs/
    repro status --serve-dir runs/

Run it with:  python examples/calibration_service.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import EvaluationBudget
from repro.hepsim import CaseStudyProblem, Scenario
from repro.hepsim.groundtruth import GroundTruthGenerator
from repro.service import CalibrationRequest, CalibrationServer, open_store


def main() -> None:
    scenario = Scenario.tiny("FCSN", icd_values=(0.0, 0.5, 1.0))
    problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())
    print(f"scenario    : {scenario.platform_name}/{scenario.label}")
    print(f"fingerprint : {problem.fingerprint()}")

    def request(algorithm: str, seed: int = 1) -> CalibrationRequest:
        return CalibrationRequest(
            space=problem.space,
            objective=problem.objective,
            fingerprint=problem.fingerprint(),
            algorithm=algorithm,
            budget=EvaluationBudget(40),
            seed=seed,
        )

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "evaluations.jsonl")
        store = open_store(store_path)

        def on_event(job, event):
            if event.kind in ("started", "finished", "failed"):
                print(f"  [{event.kind}] {event.message}")

        with CalibrationServer(store=store, workers=2, on_event=on_event) as server:
            print("\n-- cold job (fills the store) --")
            cold = server.submit(request("random"))
            cold.wait()

            print("\n-- identical warm job (served from the store) --")
            warm = server.submit(request("random"))
            warm.wait()

            print("\n-- different algorithm, same scenario --")
            other = server.submit(request("lhs"))
            other.wait()

        assert warm.result.best_values == cold.result.best_values
        assert warm.evaluations == 0

        print("\nsummary:")
        for name, job in [("cold", cold), ("warm", warm), ("lhs", other)]:
            print(
                f"  {name:5s} best MRE {job.result.best_value:7.2f}%  "
                f"{job.evaluations:3d} simulations  {job.cache_hits:3d} cache hits  "
                f"{job.elapsed:6.3f} s"
            )
        stats = store.stats()
        print(f"\nstore ({os.path.basename(store_path)}): {stats['entries']} evaluations "
              f"persisted, {stats['hits']} hits served")
        print("the warm job reproduced the cold job's calibration without a "
              "single simulator invocation.")


if __name__ == "__main__":
    main()
