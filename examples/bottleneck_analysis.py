#!/usr/bin/env python3
"""Identify the bottleneck-resource parameters of every platform (Section IV.C.2).

The paper observes that the calibration algorithms all agree on the value
of the parameter that controls the *bottleneck* resource (the HDD on the
SC platforms) while disagreeing wildly on the others, because the
objective is flat along non-bottleneck dimensions.  This example makes
that structure visible with the sensitivity-analysis utilities:

* a one-at-a-time sweep around the true parameter values shows how much
  the MRE moves when each parameter alone is varied across its range;
* the Morris elementary-effects screen gives a global view of the same
  question;
* parameters are then classified as "influential" (bottleneck) or
  "negligible", per platform.

Run it with:  python examples/bottleneck_analysis.py [--platform all]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import morris_elementary_effects, one_at_a_time, rank_parameters
from repro.hepsim import CaseStudyProblem, GroundTruthGenerator, Scenario
from repro.hepsim.scenario import REDUCED_ICD_VALUES


def analyze(platform: str, generator: GroundTruthGenerator) -> None:
    scenario = Scenario.calib(platform, icd_values=REDUCED_ICD_VALUES)
    problem = CaseStudyProblem.create(scenario, generator=generator)

    # Sweep a local window (+/- a few octaves) around the hidden true
    # values: this is the sharpest view of which parameters the accuracy
    # metric actually constrains near a plausible calibration.
    base = problem.true_values().to_dict()
    base = {k: v for k, v in base.items() if k in problem.space}
    oat = one_at_a_time(problem.objective, problem.space, base=base, levels=7, span=0.15)
    morris = morris_elementary_effects(problem.objective, problem.space, trajectories=4, seed=1)

    print(f"\n=== {platform} ({scenario.config.description}) ===")
    print(f"{'parameter':24s} {'OAT spread (MRE pts)':>22s} {'Morris mu*':>12s}")
    for name in problem.space.names:
        print(f"{name:24s} {oat.indices[name]:22.1f} {morris.indices[name]:12.1f}")
    ranking = rank_parameters(oat, threshold=0.15)
    print(f"bottleneck (influential) parameters : {', '.join(ranking['influential'])}")
    print(f"negligible parameters               : {', '.join(ranking['negligible']) or '(none)'}")
    print(f"objective evaluations used          : {oat.evaluations + morris.evaluations}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platform", default="all",
                        choices=("all", "SCFN", "FCFN", "SCSN", "FCSN"))
    args = parser.parse_args()

    generator = GroundTruthGenerator()
    platforms = ("SCFN", "FCFN", "SCSN", "FCSN") if args.platform == "all" else (args.platform,)
    for platform in platforms:
        analyze(platform, generator)

    print("\nExpected shape (paper, Section IV.C.2): on the SC platforms the disk "
          "bandwidth dominates; on FCFN the core speed and page cache dominate; "
          "the WAN bandwidth only matters on the SN platforms at low ICD.")


if __name__ == "__main__":
    main()
