#!/usr/bin/env python3
"""Calibrate *your own* simulator with the framework.

The calibration framework is simulator-agnostic: anything that maps a
dictionary of parameter values to an accuracy number can be calibrated.
This example builds a small client-server simulator directly on the
simulation substrate (``repro.simgrid`` + ``repro.wrench``), produces
"ground truth" with hidden true parameters, and calibrates two parameters
(link bandwidth and server speed) with random search and Bayesian
optimization.

Run it with:  python examples/custom_simulator.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (
    Calibrator,
    EvaluationBudget,
    Parameter,
    ParameterSpace,
    mean_relative_error,
)
from repro.simgrid import Platform


def run_client_server(link_bandwidth: float, server_speed: float, request_sizes) -> dict:
    """Simulate clients sending requests to a server; returns response times."""
    platform = Platform("client-server")
    server = platform.add_host("server", speed=server_speed, cores=2)
    client = platform.add_host("client", speed=1e9, cores=len(request_sizes))
    link = platform.add_link("net", bandwidth=link_bandwidth, latency=0.001)
    platform.add_route(client, server, [link])

    response_times = {}

    def session(index: int, size: float):
        start = platform.engine.now
        yield platform.transfer_async(f"req{index}", size, client, server)
        # The server performs 2000 flops of work per request byte.
        yield server.exec_async(f"work{index}", size * 2000.0)
        yield platform.transfer_async(f"resp{index}", size * 0.1, server, client)
        response_times[index] = platform.engine.now - start

    for i, size in enumerate(request_sizes):
        platform.engine.add_process(session(i, size), f"client{i}")
    platform.engine.run()
    return response_times


def main() -> None:
    request_sizes = [2e6, 8e6, 32e6, 64e6, 128e6]

    # "Real system": hidden true parameters (plus a little model error).
    truth = run_client_server(link_bandwidth=5.2e7, server_speed=1.45e9,
                              request_sizes=request_sizes)

    space = ParameterSpace([
        Parameter("link_bandwidth", 1e6, 1e10, unit="B/s"),
        Parameter("server_speed", 1e7, 1e11, unit="flop/s"),
    ])

    def objective(values):
        simulated = run_client_server(values["link_bandwidth"], values["server_speed"],
                                      request_sizes)
        return mean_relative_error(truth, simulated)

    print("Ground-truth response times (s):",
          {k: round(v, 3) for k, v in truth.items()})

    for algorithm in ("random", "bayesian"):
        calibrator = Calibrator(space, objective, algorithm=algorithm,
                                budget=EvaluationBudget(120), seed=7)
        result = calibrator.run()
        print(f"\n{algorithm.upper()}: best MRE = {result.best_value:.2f}% "
              f"after {result.evaluations} evaluations")
        for name, value in result.best_values.items():
            print(f"  {name} = {value:.3g}")

    print("\n(True values: link_bandwidth = 5.2e+07 B/s, server_speed = 1.45e+09 flop/s;")
    print(" non-bottleneck parameters may legitimately differ, as in the paper.)")


if __name__ == "__main__":
    main()
