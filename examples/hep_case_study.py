#!/usr/bin/env python3
"""Reproduce the paper's headline result (Table III) end to end.

For each of the four Table II platform configurations, this example:

* evaluates the HUMAN (manual, incremental) calibration,
* runs the three automated calibration algorithms of the paper
  (RANDOM, GRID, GDFIX) under the same budget,
* prints the resulting MRE table next to the paper's reported values.

The budget is configurable with ``--evals`` (simulator invocations per
calibration); larger budgets sharpen the automated results.

Run it with:  python examples/hep_case_study.py [--evals 400] [--scale calib]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.experiments import table3_simulation_accuracy
from repro.analysis.tables import render_table
from repro.hepsim.groundtruth import GroundTruthGenerator

#: The values reported in Table III of the paper, for side-by-side reading.
PAPER_TABLE3 = {
    "HUMAN": {"SCFN": 23.21, "FCFN": 274.20, "SCSN": 18.48, "FCSN": 196.24},
    "RANDOM": {"SCFN": 22.07, "FCFN": 1.02, "SCSN": 14.69, "FCSN": 4.20},
    "GRID": {"SCFN": 24.10, "FCFN": 3.08, "SCSN": 16.72, "FCSN": 8.48},
    "GDFIX": {"SCFN": 22.90, "FCFN": 1.50, "SCSN": 15.83, "FCSN": 6.59},
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--evals", type=int, default=300,
                        help="simulator invocations per automated calibration")
    parser.add_argument("--scale", default="calib", choices=("calib", "bench"),
                        help="scenario scale (see DESIGN.md)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    generator = GroundTruthGenerator()
    result = table3_simulation_accuracy(
        budget_evaluations=args.evals,
        seed=args.seed,
        generator=generator,
        scale=args.scale,
    )
    print(result.to_text())

    print("\nPaper's Table III (for comparison — absolute numbers differ because the")
    print("ground truth here is a synthetic reference system, see DESIGN.md §3):")
    headers = ["Method", "SCFN", "FCFN", "SCSN", "FCSN"]
    rows = [
        [method] + [f"{PAPER_TABLE3[method][p]:.2f}%" for p in ("SCFN", "FCFN", "SCSN", "FCSN")]
        for method in ("HUMAN", "RANDOM", "GRID", "GDFIX")
    ]
    print(render_table(headers, rows))

    print("\nShape check: the automated methods should be on par with HUMAN on the")
    print("SC platforms and dramatically better on the FC platforms, with GRID the")
    print("weakest automated method — as in the paper.")


if __name__ == "__main__":
    main()
